package dnscache

import (
	"net/netip"
	"strconv"
	"testing"
	"time"

	"dohpool/internal/dnswire"
)

type fakeClock struct{ t time.Time }

func (f *fakeClock) now() time.Time          { return f.t }
func (f *fakeClock) advance(d time.Duration) { f.t = f.t.Add(d) }
func newFakeClock() *fakeClock               { return &fakeClock{t: time.Unix(1700000000, 0)} }

func question(name string) dnswire.Question {
	return dnswire.Question{Name: name, Type: dnswire.TypeA, Class: dnswire.ClassINET}
}

func response(name string, ttl uint32, ips ...string) *dnswire.Message {
	m := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	m.Questions = []dnswire.Question{question(name)}
	for _, ip := range ips {
		m.Answers = append(m.Answers, dnswire.AddressRecord(name, netip.MustParseAddr(ip), ttl))
	}
	return m
}

func TestPutGet(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	c.Put(q, response("pool.test.", 300, "192.0.2.1"), 60)

	got, ok := c.Get(q)
	if !ok {
		t.Fatal("miss after Put")
	}
	if len(got.Answers) != 1 {
		t.Fatalf("answers = %d", len(got.Answers))
	}
	if st := c.Stats(); st.Hits != 1 || st.Misses != 0 {
		t.Errorf("stats = %+v", st)
	}
}

func TestExpiry(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	c.Put(q, response("pool.test.", 10, "192.0.2.1"), 60)

	clk.advance(9 * time.Second)
	if _, ok := c.Get(q); !ok {
		t.Fatal("expired before TTL")
	}
	clk.advance(2 * time.Second)
	if _, ok := c.Get(q); ok {
		t.Fatal("survived past TTL")
	}
	if c.Len() != 0 {
		t.Errorf("expired entry not evicted, Len = %d", c.Len())
	}
}

func TestTTLDecrement(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	c.Put(q, response("pool.test.", 100, "192.0.2.1"), 60)

	clk.advance(40 * time.Second)
	got, ok := c.Get(q)
	if !ok {
		t.Fatal("miss")
	}
	if ttl := got.Answers[0].TTL; ttl != 60 {
		t.Fatalf("decremented TTL = %d, want 60", ttl)
	}
}

func TestGetReturnsCopy(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	c.Put(q, response("pool.test.", 100, "192.0.2.1"), 60)

	first, _ := c.Get(q)
	first.Answers = nil
	second, ok := c.Get(q)
	if !ok || len(second.Answers) != 1 {
		t.Fatal("cache entry mutated through returned copy")
	}
}

func TestPutCopies(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	msg := response("pool.test.", 100, "192.0.2.1")
	c.Put(q, msg, 60)
	msg.Answers = nil

	got, ok := c.Get(q)
	if !ok || len(got.Answers) != 1 {
		t.Fatal("cache shares storage with caller's message")
	}
}

func TestLRUEviction(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now), WithCapacity(3))
	for i := 0; i < 3; i++ {
		name := "n" + strconv.Itoa(i) + ".test."
		c.Put(question(name), response(name, 300, "192.0.2.1"), 60)
	}
	// Touch n0 so n1 becomes the LRU victim.
	if _, ok := c.Get(question("n0.test.")); !ok {
		t.Fatal("n0 missing")
	}
	c.Put(question("n3.test."), response("n3.test.", 300, "192.0.2.1"), 60)

	if _, ok := c.Get(question("n1.test.")); ok {
		t.Error("LRU victim n1 still cached")
	}
	for _, name := range []string{"n0.test.", "n2.test.", "n3.test."} {
		if _, ok := c.Get(question(name)); !ok {
			t.Errorf("%s evicted unexpectedly", name)
		}
	}
}

func TestZeroTTLUncacheable(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	c.Put(q, response("pool.test.", 0, "192.0.2.1"), 0)
	if _, ok := c.Get(q); ok {
		t.Fatal("zero-TTL response was cached")
	}
}

func TestNegativeCachingUsesMinTTL(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("missing.test.")
	neg := &dnswire.Message{Header: dnswire.Header{Response: true, RCode: dnswire.RCodeNXDomain}}
	neg.Questions = []dnswire.Question{q}
	c.Put(q, neg, 30)

	if _, ok := c.Get(q); !ok {
		t.Fatal("negative response not cached")
	}
	clk.advance(31 * time.Second)
	if _, ok := c.Get(q); ok {
		t.Fatal("negative entry outlived minTTL")
	}
}

func TestFlush(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	c.Put(question("a.test."), response("a.test.", 300, "192.0.2.1"), 60)
	c.Flush()
	if c.Len() != 0 {
		t.Fatalf("Len after Flush = %d", c.Len())
	}
	if _, ok := c.Get(question("a.test.")); ok {
		t.Fatal("entry survived Flush")
	}
}

func TestOverwrite(t *testing.T) {
	clk := newFakeClock()
	c := New(WithClock(clk.now))
	q := question("pool.test.")
	c.Put(q, response("pool.test.", 300, "192.0.2.1"), 60)
	c.Put(q, response("pool.test.", 300, "192.0.2.9"), 60)
	got, ok := c.Get(q)
	if !ok {
		t.Fatal("miss")
	}
	addrs := got.AnswerAddrs()
	if len(addrs) != 1 || addrs[0] != netip.MustParseAddr("192.0.2.9") {
		t.Fatalf("addrs = %v, want the overwritten value", addrs)
	}
	if c.Len() != 1 {
		t.Fatalf("Len = %d after overwrite", c.Len())
	}
}
