package dnscache

import (
	"sync"
	"sync/atomic"
	"time"
)

// WireEntry is one pre-encoded DNS response kept alongside a pool cache
// entry: the complete answer plus the truncated (TC, empty-section) form
// served when the client's advertised payload size cannot fit the full
// one. Both forms are stored with transaction ID 0 and the RD/CD echo
// bits clear; the serve path copies the chosen form and patches those
// few octets per query (dnswire.PatchID, dnswire.EchoFlags), plus the
// aged answer TTLs at TTLOffsets. Entries are immutable after Put — a
// regeneration replaces the entry wholesale, never edits it.
type WireEntry struct {
	// Full is the complete encoded response.
	Full []byte
	// FullFramed is Full behind a pre-encoded RFC 7766 2-byte length
	// prefix, so the stream transports (TCP, DoT) serve a cached hit
	// with one copy and one write — no per-response prefix assembly.
	// Full aliases FullFramed[2:]: the bytes are stored once.
	// TTLOffsets index into Full, so stream patches apply them at +2.
	// Truncation is a UDP-only concept (a stream never outgrows its
	// 64 KiB frame), so the truncated form has no framed twin.
	FullFramed []byte
	// Truncated is the encoded TC form: same header and question,
	// empty answer/authority/additional sections, TC bit set.
	Truncated []byte
	// TTLOffsets are the byte offsets of the answer TTL fields in Full
	// (dnswire.AnswerTTLOffsets).
	TTLOffsets []int
	// TTL is the answer TTL encoded in Full, the value aged copies
	// count down from.
	TTL uint32
	// Stored is when the entry was built; the serve path derives the
	// aged TTL from now − Stored.
	Stored time.Time
	// Expires is when the entry stops being servable.
	Expires time.Time
}

// Form picks the stored form that fits within limit octets, reporting
// whether it is the truncated one. This mirrors the slow path's
// truncation rule exactly: the full form is served iff it fits.
//
//dohlint:noalloc
func (e *WireEntry) Form(limit int) (wire []byte, truncated bool) {
	if len(e.Full) <= limit {
		return e.Full, false
	}
	return e.Truncated, true
}

// WireStats is a point-in-time snapshot of wire cache counters.
type WireStats struct {
	Hits    uint64
	Misses  uint64
	Entries int
}

// wireShard is one lock domain of a WireCache.
type wireShard struct {
	// The shard lock sits on the allocation-free UDP serve path.
	//dohlint:hotlock
	mu  sync.RWMutex
	m   map[string]*WireEntry
	cap int
}

// WireCache maps an engine cache key to its pre-encoded response forms.
// It is a plain sharded map rather than a Store because its single hot
// operation — Get with a caller-built []byte key — must not allocate:
// the lookup indexes the shard map with string(key) directly, which the
// compiler performs without materialising a string. Expired entries are
// dropped lazily on access and swept when a shard hits capacity, so the
// cache stays bounded by roughly the pool cache's own key population.
type WireCache struct {
	shards []*wireShard
	mask   uint32
	now    func() time.Time

	hits   atomic.Uint64
	misses atomic.Uint64
}

// NewWireCache builds a WireCache bounded to capacity entries split over
// shards lock domains, with the same defaulting and clamping rules as
// NewShardedStore. clock injects a time source (nil uses time.Now).
func NewWireCache(capacity, shards int, clock func() time.Time) *WireCache {
	if capacity <= 0 {
		capacity = DefaultCapacity
	}
	if shards <= 0 {
		shards = DefaultShards()
	}
	shards = nextPow2(shards)
	for shards > 1 && capacity/shards < minShardCapacity {
		shards >>= 1
	}
	if clock == nil {
		clock = time.Now
	}
	perShard := (capacity + shards - 1) / shards
	if perShard < 1 {
		perShard = 1
	}
	c := &WireCache{
		shards: make([]*wireShard, shards),
		mask:   uint32(shards - 1),
		now:    clock,
	}
	for i := range c.shards {
		c.shards[i] = &wireShard{m: make(map[string]*WireEntry), cap: perShard}
	}
	return c
}

// shardFor hashes key bytes (FNV-1a, identical to Store's) onto a shard.
//
//dohlint:noalloc
func (c *WireCache) shardFor(key []byte) *wireShard {
	const (
		offset32 = 2166136261
		prime32  = 16777619
	)
	h := uint32(offset32)
	for i := 0; i < len(key); i++ {
		h ^= uint32(key[i])
		h *= prime32
	}
	return c.shards[h&c.mask]
}

// Get returns the live entry for key, or (nil, false). It allocates
// nothing: key stays a []byte end to end and the map index converts it
// without a heap string. An expired entry counts as a miss and is
// removed on the spot.
//
//dohlint:noalloc
func (c *WireCache) Get(key []byte) (*WireEntry, bool) {
	sh := c.shardFor(key)
	sh.mu.RLock()
	e, ok := sh.m[string(key)]
	sh.mu.RUnlock()
	if !ok {
		c.misses.Add(1)
		return nil, false
	}
	if !c.now().Before(e.Expires) {
		sh.mu.Lock()
		// Re-check under the write lock: a regeneration may have
		// replaced the entry since the read.
		if cur, still := sh.m[string(key)]; still && cur == e {
			delete(sh.m, string(key))
		}
		sh.mu.Unlock()
		c.misses.Add(1)
		return nil, false
	}
	c.hits.Add(1)
	return e, true
}

// Put stores (replacing) the entry for key. A shard at capacity first
// sweeps its expired entries; if every resident entry is live, an
// arbitrary one is evicted — approximate, but the population is bounded
// by the pool cache's, so pressure here is rare.
func (c *WireCache) Put(key string, e *WireEntry) {
	sh := c.shardFor([]byte(key))
	sh.mu.Lock()
	if _, exists := sh.m[key]; !exists && len(sh.m) >= sh.cap {
		now := c.now()
		for k, old := range sh.m {
			if !now.Before(old.Expires) {
				delete(sh.m, k)
			}
		}
		for k := range sh.m {
			if len(sh.m) < sh.cap {
				break
			}
			delete(sh.m, k)
		}
	}
	sh.m[key] = e
	sh.mu.Unlock()
}

// Invalidate removes key's entry, if any. The engine calls this before
// publishing a regenerated pool so the wire cache can never serve bytes
// from a superseded generation.
func (c *WireCache) Invalidate(key string) {
	sh := c.shardFor([]byte(key))
	sh.mu.Lock()
	delete(sh.m, key)
	sh.mu.Unlock()
}

// Len returns the resident entry count (including not-yet-swept expired
// entries).
func (c *WireCache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.RLock()
		n += len(sh.m)
		sh.mu.RUnlock()
	}
	return n
}

// Stats snapshots the cache counters.
func (c *WireCache) Stats() WireStats {
	return WireStats{
		Hits:    c.hits.Load(),
		Misses:  c.misses.Load(),
		Entries: c.Len(),
	}
}
