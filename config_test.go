package dohpool

import (
	"reflect"
	"testing"
	"time"
)

// TestAliasPrecedence drives every deprecated flat field through
// resolved() three ways — flat only, grouped only, both — and asserts
// the grouped spelling wins when both are set while the flat spelling
// still works alone.
func TestAliasPrecedence(t *testing.T) {
	type tc struct {
		name    string
		flat    func(*Config) // set via the deprecated flat field
		grouped func(*Config) // set via the grouped field, different value
		// check returns the effective value read from the resolved
		// grouped field, for comparison against want.
		check       func(Config) any
		wantFlat    any // expected when only flat is set
		wantGrouped any // expected when both are set (grouped wins)
	}
	cases := []tc{
		{
			name:        "CacheSize",
			flat:        func(c *Config) { c.CacheSize = 100 },
			grouped:     func(c *Config) { c.Cache.Size = 200 },
			check:       func(c Config) any { return c.Cache.Size },
			wantFlat:    100,
			wantGrouped: 200,
		},
		{
			name:        "CacheSize negative sentinel counts as set",
			flat:        func(c *Config) { c.CacheSize = 100 },
			grouped:     func(c *Config) { c.Cache.Size = -1 },
			check:       func(c Config) any { return c.Cache.Size },
			wantFlat:    100,
			wantGrouped: -1,
		},
		{
			name:        "CacheShards",
			flat:        func(c *Config) { c.CacheShards = 2 },
			grouped:     func(c *Config) { c.Cache.Shards = 4 },
			check:       func(c Config) any { return c.Cache.Shards },
			wantFlat:    2,
			wantGrouped: 4,
		},
		{
			name:        "StaleWhileRevalidate",
			flat:        func(c *Config) { c.StaleWhileRevalidate = time.Minute },
			grouped:     func(c *Config) { c.Cache.StaleWhileRevalidate = time.Hour },
			check:       func(c Config) any { return c.Cache.StaleWhileRevalidate },
			wantFlat:    time.Minute,
			wantGrouped: time.Hour,
		},
		{
			name:        "MaxStale",
			flat:        func(c *Config) { c.MaxStale = time.Minute },
			grouped:     func(c *Config) { c.Cache.StaleWhileRevalidate = time.Hour },
			check:       func(c Config) any { return c.Cache.StaleWhileRevalidate },
			wantFlat:    time.Minute,
			wantGrouped: time.Hour,
		},
		{
			name:        "RefreshAhead",
			flat:        func(c *Config) { c.RefreshAhead = 0.5 },
			grouped:     func(c *Config) { c.Refresh.Ahead = 0.8 },
			check:       func(c Config) any { return c.Refresh.Ahead },
			wantFlat:    0.5,
			wantGrouped: 0.8,
		},
		{
			name:        "RefreshMinHits",
			flat:        func(c *Config) { c.RefreshMinHits = 2 },
			grouped:     func(c *Config) { c.Refresh.MinHits = 5 },
			check:       func(c Config) any { return c.Refresh.MinHits },
			wantFlat:    uint64(2),
			wantGrouped: uint64(5),
		},
		{
			name:        "HedgeDelay",
			flat:        func(c *Config) { c.HedgeDelay = time.Millisecond },
			grouped:     func(c *Config) { c.Health.HedgeDelay = time.Second },
			check:       func(c Config) any { return c.Health.HedgeDelay },
			wantFlat:    time.Millisecond,
			wantGrouped: time.Second,
		},
		{
			name:        "DisableHedging (bool OR)",
			flat:        func(c *Config) { c.DisableHedging = true },
			grouped:     func(c *Config) { c.Health.DisableHedging = true },
			check:       func(c Config) any { return c.Health.DisableHedging },
			wantFlat:    true,
			wantGrouped: true,
		},
		{
			name:        "BreakerThreshold",
			flat:        func(c *Config) { c.BreakerThreshold = 5 },
			grouped:     func(c *Config) { c.Health.BreakerThreshold = -1 },
			check:       func(c Config) any { return c.Health.BreakerThreshold },
			wantFlat:    5,
			wantGrouped: -1,
		},
		{
			name:        "BreakerCooldown",
			flat:        func(c *Config) { c.BreakerCooldown = time.Second },
			grouped:     func(c *Config) { c.Health.BreakerCooldown = time.Minute },
			check:       func(c Config) any { return c.Health.BreakerCooldown },
			wantFlat:    time.Second,
			wantGrouped: time.Minute,
		},
		{
			name:        "TrustWindow",
			flat:        func(c *Config) { c.TrustWindow = 8 },
			grouped:     func(c *Config) { c.Trust.Window = 32 },
			check:       func(c Config) any { return c.Trust.Window },
			wantFlat:    8,
			wantGrouped: 32,
		},
		{
			name:        "TrustMinScore",
			flat:        func(c *Config) { c.TrustMinScore = 0.3 },
			grouped:     func(c *Config) { c.Trust.MinScore = 0.5 },
			check:       func(c Config) any { return c.Trust.MinScore },
			wantFlat:    0.3,
			wantGrouped: 0.5,
		},
		{
			name:        "ChaosPayload",
			flat:        func(c *Config) { c.ChaosPayload = "replace" },
			grouped:     func(c *Config) { c.Chaos.Payload = "inflate" },
			check:       func(c Config) any { return c.Chaos.Payload },
			wantFlat:    "replace",
			wantGrouped: "inflate",
		},
		{
			name:        "ChaosResolvers",
			flat:        func(c *Config) { c.ChaosResolvers = []int{0} },
			grouped:     func(c *Config) { c.Chaos.Resolvers = []int{1, 2} },
			check:       func(c Config) any { return len(c.Chaos.Resolvers) },
			wantFlat:    1,
			wantGrouped: 2,
		},
		{
			name:        "ChaosProb",
			flat:        func(c *Config) { c.ChaosProb = 0.25 },
			grouped:     func(c *Config) { c.Chaos.Prob = 0.75 },
			check:       func(c Config) any { return c.Chaos.Prob },
			wantFlat:    0.25,
			wantGrouped: 0.75,
		},
		{
			name:        "ChaosSeed",
			flat:        func(c *Config) { c.ChaosSeed = 7 },
			grouped:     func(c *Config) { c.Chaos.Seed = 11 },
			check:       func(c Config) any { return c.Chaos.Seed },
			wantFlat:    int64(7),
			wantGrouped: int64(11),
		},
		{
			name:        "UDPWorkers",
			flat:        func(c *Config) { c.UDPWorkers = 2 },
			grouped:     func(c *Config) { c.Serve.UDPWorkers = 8 },
			check:       func(c Config) any { return c.Serve.UDPWorkers },
			wantFlat:    2,
			wantGrouped: 8,
		},
		{
			name:        "UDPBatch",
			flat:        func(c *Config) { c.UDPBatch = 1 },
			grouped:     func(c *Config) { c.Serve.UDPBatch = 32 },
			check:       func(c Config) any { return c.Serve.UDPBatch },
			wantFlat:    1,
			wantGrouped: 32,
		},
		{
			name:        "MaxTCPConns",
			flat:        func(c *Config) { c.MaxTCPConns = 10 },
			grouped:     func(c *Config) { c.Serve.MaxTCPConns = 99 },
			check:       func(c Config) any { return c.Serve.MaxTCPConns },
			wantFlat:    10,
			wantGrouped: 99,
		},
		{
			name:        "DoHAddr",
			flat:        func(c *Config) { c.DoHAddr = "127.0.0.1:1" },
			grouped:     func(c *Config) { c.Serve.DoHAddr = "127.0.0.1:2" },
			check:       func(c Config) any { return c.Serve.DoHAddr },
			wantFlat:    "127.0.0.1:1",
			wantGrouped: "127.0.0.1:2",
		},
		{
			name:        "DoTAddr",
			flat:        func(c *Config) { c.DoTAddr = "127.0.0.1:1" },
			grouped:     func(c *Config) { c.Serve.DoTAddr = "127.0.0.1:2" },
			check:       func(c Config) any { return c.Serve.DoTAddr },
			wantFlat:    "127.0.0.1:1",
			wantGrouped: "127.0.0.1:2",
		},
		{
			name:        "TLSCert",
			flat:        func(c *Config) { c.TLSCert = "flat.pem" },
			grouped:     func(c *Config) { c.Serve.TLSCert = "grouped.pem" },
			check:       func(c Config) any { return c.Serve.TLSCert },
			wantFlat:    "flat.pem",
			wantGrouped: "grouped.pem",
		},
		{
			name:        "TLSKey",
			flat:        func(c *Config) { c.TLSKey = "flat.key" },
			grouped:     func(c *Config) { c.Serve.TLSKey = "grouped.key" },
			check:       func(c Config) any { return c.Serve.TLSKey },
			wantFlat:    "flat.key",
			wantGrouped: "grouped.key",
		},
		{
			name:        "TLSSelfSigned (bool OR)",
			flat:        func(c *Config) { c.TLSSelfSigned = true },
			grouped:     func(c *Config) { c.Serve.TLSSelfSigned = true },
			check:       func(c Config) any { return c.Serve.TLSSelfSigned },
			wantFlat:    true,
			wantGrouped: true,
		},
		{
			name:        "AdminAddr",
			flat:        func(c *Config) { c.AdminAddr = "127.0.0.1:1" },
			grouped:     func(c *Config) { c.Serve.AdminAddr = "127.0.0.1:2" },
			check:       func(c Config) any { return c.Serve.AdminAddr },
			wantFlat:    "127.0.0.1:1",
			wantGrouped: "127.0.0.1:2",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var flatOnly Config
			c.flat(&flatOnly)
			if got := c.check(flatOnly.resolved()); got != c.wantFlat {
				t.Errorf("flat only: effective = %v, want %v", got, c.wantFlat)
			}
			var groupedOnly Config
			c.grouped(&groupedOnly)
			if got := c.check(groupedOnly.resolved()); got != c.wantGrouped {
				t.Errorf("grouped only: effective = %v, want %v", got, c.wantGrouped)
			}
			var both Config
			c.flat(&both)
			c.grouped(&both)
			if got := c.check(both.resolved()); got != c.wantGrouped {
				t.Errorf("both set: effective = %v, want grouped %v", got, c.wantGrouped)
			}
		})
	}
}

// TestStaleChainPrecedence pins the one three-deep alias chain:
// Cache.StaleWhileRevalidate > StaleWhileRevalidate > MaxStale.
func TestStaleChainPrecedence(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  Config
		want time.Duration
	}{
		{"MaxStale alone", Config{MaxStale: time.Minute}, time.Minute},
		{"flat SWR beats MaxStale", Config{MaxStale: time.Minute, StaleWhileRevalidate: time.Hour}, time.Hour},
		{"grouped beats flat SWR", Config{StaleWhileRevalidate: time.Hour, Cache: CacheConfig{StaleWhileRevalidate: time.Second}}, time.Second},
		{"grouped beats all", Config{MaxStale: time.Minute, StaleWhileRevalidate: time.Hour, Cache: CacheConfig{StaleWhileRevalidate: time.Second}}, time.Second},
	} {
		t.Run(tc.name, func(t *testing.T) {
			r := tc.cfg.resolved()
			if r.Cache.StaleWhileRevalidate != tc.want {
				t.Errorf("effective SWR = %v, want %v", r.Cache.StaleWhileRevalidate, tc.want)
			}
			// The resolved config writes the effective value back to
			// every alias, so any reader sees one truth.
			if r.StaleWhileRevalidate != tc.want || r.MaxStale != tc.want {
				t.Errorf("aliases not synced: SWR=%v MaxStale=%v, want %v",
					r.StaleWhileRevalidate, r.MaxStale, tc.want)
			}
		})
	}
}

// TestResolvedSyncsFlatAliases asserts resolved() writes effective
// values back to the deprecated flat spellings.
func TestResolvedSyncsFlatAliases(t *testing.T) {
	r := Config{
		Cache:   CacheConfig{Size: 7, Shards: 2},
		Refresh: RefreshConfig{Ahead: 0.8, MinHits: 3},
		Health:  HealthConfig{HedgeDelay: time.Second, BreakerThreshold: 4, BreakerCooldown: time.Minute},
		Trust:   TrustConfig{Window: 9, MinScore: 0.5},
		Serve:   ServeConfig{UDPWorkers: 3, DoHAddr: "x", AdminAddr: "y"},
	}.resolved()
	if r.CacheSize != 7 || r.CacheShards != 2 || r.RefreshAhead != 0.8 || r.RefreshMinHits != 3 ||
		r.HedgeDelay != time.Second || r.BreakerThreshold != 4 || r.BreakerCooldown != time.Minute ||
		r.TrustWindow != 9 || r.TrustMinScore != 0.5 ||
		r.UDPWorkers != 3 || r.DoHAddr != "x" || r.AdminAddr != "y" {
		t.Errorf("flat aliases not synced from grouped: %+v", r)
	}
}

// TestNetChaosConfigActive pins which combinations engage the
// network-fault layer.
func TestNetChaosConfigActive(t *testing.T) {
	for _, tc := range []struct {
		name string
		cfg  NetChaosConfig
		want bool
	}{
		{"zero", NetChaosConfig{}, false},
		{"drop", NetChaosConfig{DropProb: 0.1}, true},
		{"delay", NetChaosConfig{Delay: time.Millisecond}, true},
		{"jitter only", NetChaosConfig{Jitter: time.Millisecond}, true},
		{"partition needs both", NetChaosConfig{PartitionEvery: time.Second}, false},
		{"partition", NetChaosConfig{PartitionEvery: time.Second, PartitionFor: time.Millisecond}, true},
		{"churn needs both", NetChaosConfig{ChurnDowntime: time.Second}, false},
		{"churn", NetChaosConfig{ChurnEvery: time.Second, ChurnDowntime: time.Millisecond}, true},
	} {
		if got := tc.cfg.Active(); got != tc.want {
			t.Errorf("%s: Active() = %v, want %v", tc.name, got, tc.want)
		}
	}
}

// configSurface is the locked exported field surface of Config and its
// sub-structs. Removing or renaming any of these fields is an API
// break; this test turns that into a diff you must consciously edit.
var configSurface = map[string][]string{
	"Config": {
		"Resolvers", "TLSConfig", "UseGET", "UsePadding", "MinResolvers",
		"WithMajority", "Sequential", "DualStack", "QueryTimeout", "HTTPClient",
		"Cache", "Refresh", "Health", "Trust", "Chaos", "Serve",
		"CacheSize", "CacheShards", "StaleWhileRevalidate", "MaxStale",
		"RefreshAhead", "RefreshMinHits", "HedgeDelay", "DisableHedging",
		"BreakerThreshold", "BreakerCooldown", "TrustWindow", "TrustMinScore",
		"ChaosPayload", "ChaosResolvers", "ChaosProb", "ChaosSeed",
		"UDPWorkers", "UDPBatch", "MaxTCPConns", "DoHAddr", "DoTAddr",
		"TLSCert", "TLSKey", "TLSSelfSigned", "AdminAddr",
	},
	"CacheConfig":   {"Size", "Shards", "StaleWhileRevalidate"},
	"RefreshConfig": {"Ahead", "MinHits"},
	"HealthConfig":  {"HedgeDelay", "DisableHedging", "BreakerThreshold", "BreakerCooldown"},
	"TrustConfig":   {"Window", "MinScore"},
	"ChaosConfig":   {"Payload", "Resolvers", "Prob", "Seed", "Net"},
	"NetChaosConfig": {
		"DropProb", "Delay", "Jitter", "PartitionEvery", "PartitionFor",
		"ChurnEvery", "ChurnDowntime", "Resolvers",
	},
	"ServeConfig": {
		"UDPWorkers", "UDPBatch", "UDPSockets", "MaxTCPConns", "DoHAddr", "DoTAddr",
		"TLSCert", "TLSKey", "TLSSelfSigned", "AdminAddr",
	},
}

// TestConfigSurfaceLock compares the reflected field sets of the config
// structs against the locked surface above, in both directions.
func TestConfigSurfaceLock(t *testing.T) {
	types := map[string]reflect.Type{
		"Config":         reflect.TypeOf(Config{}),
		"CacheConfig":    reflect.TypeOf(CacheConfig{}),
		"RefreshConfig":  reflect.TypeOf(RefreshConfig{}),
		"HealthConfig":   reflect.TypeOf(HealthConfig{}),
		"TrustConfig":    reflect.TypeOf(TrustConfig{}),
		"ChaosConfig":    reflect.TypeOf(ChaosConfig{}),
		"NetChaosConfig": reflect.TypeOf(NetChaosConfig{}),
		"ServeConfig":    reflect.TypeOf(ServeConfig{}),
	}
	for name, typ := range types {
		locked := make(map[string]bool, len(configSurface[name]))
		for _, f := range configSurface[name] {
			locked[f] = true
		}
		got := make(map[string]bool, typ.NumField())
		for i := 0; i < typ.NumField(); i++ {
			f := typ.Field(i)
			if !f.IsExported() {
				continue
			}
			got[f.Name] = true
			if !locked[f.Name] {
				t.Errorf("%s gained exported field %s — extend the locked surface deliberately", name, f.Name)
			}
		}
		for f := range locked {
			if !got[f] {
				t.Errorf("%s lost exported field %s — an API break", name, f)
			}
		}
	}
}
