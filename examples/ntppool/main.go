// NTP pool scenario: the paper's full story, end to end.
//
// A client needs trustworthy time. It (1) generates its NTP server pool
// through three distributed DoH resolvers — one of which the attacker
// fully controls — and (2) runs the Chronos sampling algorithm over that
// pool against simulated NTP servers (the attacker's servers lie by ten
// minutes).
//
// Because the compromised resolver contributes exactly 1/3 of the pool
// (Algorithm 1's truncation), and Chronos tolerates a malicious minority,
// the accepted clock offset stays within milliseconds. For contrast, the
// same client using ONE (poisoned) resolver hands Chronos an all-attacker
// pool and the clock is captured.
//
// Run with: go run ./examples/ntppool
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	if err := scenario("legacy: 1 resolver, compromised", 1); err != nil {
		return err
	}
	fmt.Println()
	return scenario("distributed DoH: N=3, 1 compromised", 3)
}

func scenario(name string, resolvers int) error {
	fmt.Printf("=== %s ===\n", name)
	tb, err := testbed.Start(testbed.Config{
		PoolSize:  9,
		Resolvers: resolvers,
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(resolvers, 0), // resolver 0 is the attacker's
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	fleet, err := testbed.StartNTPFleet(testbed.NTPFleetConfig{
		BenignAddrs:    tb.BenignAddrs,
		MaliciousShift: 600 * time.Second,
	})
	if err != nil {
		return err
	}
	defer fleet.Close()

	gen, err := tb.Generator(testbed.GeneratorOptions{})
	if err != nil {
		return err
	}
	ctx, cancel := context.WithTimeout(context.Background(), 15*time.Second)
	defer cancel()

	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		return err
	}
	frac := core.Fraction(pool.Addrs, attack.IsAttackerAddr)
	fmt.Printf("pool: %d entries, attacker-controlled fraction %.2f\n", len(pool.Addrs), frac)

	cl, err := chronos.New(chronos.Config{
		Pool:    pool.Addrs,
		Sampler: fleet,
		Seed:    42,
	})
	if err != nil {
		return err
	}
	res, err := cl.Poll(ctx)
	if err != nil {
		return err
	}
	verdict := "clock SAFE"
	if res.Offset > 300*time.Second || res.Offset < -300*time.Second {
		verdict = "clock CAPTURED (time shifted by attacker)"
	}
	fmt.Printf("chronos: accepted offset %v after %d retries (panic=%t) — %s\n",
		res.Offset.Round(time.Millisecond), res.Retries, res.Panicked, verdict)
	return nil
}
