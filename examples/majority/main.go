// Majority filter: pool generation for applications WITHOUT built-in
// tolerance of malicious servers.
//
// Chronos can digest a pool with a bad minority, so plain Algorithm 1
// suffices for it. Applications that must trust every address (the
// paper's Section II mentions classic majority voting for this case) can
// enable the majority filter: an address enters the final answer only if
// more than half of the DoH resolvers returned it.
//
// The example runs N=5 resolvers with two fully compromised; the forged
// addresses appear in the combined pool (bounded at 2/5 by truncation)
// but are eliminated from the majority-confirmed set. It also starts the
// backward-compatible DNS front-end and queries it with a plain stub
// resolver, demonstrating the zero-change integration path.
//
// Run with: go run ./examples/majority
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dohpool"
	"dohpool/internal/attack"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
	"dohpool/internal/transport"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	tb, err := testbed.Start(testbed.Config{
		Resolvers: 5,
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(5, 1, 3), // resolvers 1 and 3 compromised
		// Return the full RRset per query: with pool.ntp.org-style
		// rotation the benign vote would split across subsets (the A4
		// availability trade-off shown in experiment E8).
		MaxAnswers: -1,
	})
	if err != nil {
		return err
	}
	defer tb.Close()

	cfg := dohpool.Config{
		TLSConfig:    tb.CA.ClientTLS(),
		WithMajority: true,
	}
	for _, ep := range tb.Endpoints {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{Name: ep.Name, URL: ep.URL})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pool, err := client.LookupPool(ctx, tb.Domain())
	if err != nil {
		return err
	}

	forged := 0
	for _, a := range pool.Addrs {
		if attack.IsAttackerAddr(a) {
			forged++
		}
	}
	fmt.Printf("combined pool: %d entries, %d forged (fraction %.2f — the attacker's resolver share)\n",
		len(pool.Addrs), forged, float64(forged)/float64(len(pool.Addrs)))

	fmt.Printf("majority-confirmed set (%d entries):\n", len(pool.Majority))
	for _, a := range pool.Majority {
		marker := ""
		if attack.IsAttackerAddr(a) {
			marker = "  <-- FORGED (must never happen)"
		}
		fmt.Printf("  %v%s\n", a, marker)
	}

	// Legacy integration: a plain stub resolver queries the front-end.
	frontend, err := client.Serve("127.0.0.1:0")
	if err != nil {
		return err
	}
	defer frontend.Close()
	query, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
	if err != nil {
		return err
	}
	resp, err := (&transport.UDP{}).Exchange(ctx, query, frontend.Addr())
	if err != nil {
		return err
	}
	fmt.Printf("\nlegacy stub query to DNS front-end %s answered %d majority-confirmed addresses\n",
		frontend.Addr(), len(resp.AnswerAddrs()))
	return nil
}
