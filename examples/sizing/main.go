// Sizing: how many DoH resolvers does a deployment need?
//
// The paper's Section III-b observes that adding resolvers buys security
// "exponentially", like growing a key. This example turns that analogy
// into an operational answer: given an estimate of the per-resolver
// attack probability p (how likely is it that an attacker can compromise
// or sit on the path of any one resolver?) and a target bound on the
// probability that the attacker captures a pool majority, print the
// minimum resolver count — and the full security curve.
//
// Run with: go run ./examples/sizing
package main

import (
	"fmt"
	"log"

	"dohpool"
	"dohpool/internal/analysis"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const poolMajority = 0.5

	fmt.Println("minimum resolvers N so that P(attacker owns pool majority) <= target")
	fmt.Printf("%-22s", "per-resolver p:")
	ps := []float64{0.05, 0.1, 0.2, 0.3, 0.4}
	for _, p := range ps {
		fmt.Printf("  p=%-5.2f", p)
	}
	fmt.Println()
	for _, target := range []float64{1e-1, 1e-2, 1e-3, 1e-4, 1e-6} {
		fmt.Printf("target %-15.0e", target)
		for _, p := range ps {
			n, err := dohpool.RecommendResolverCount(p, poolMajority, target)
			if err != nil {
				fmt.Printf("  %-7s", "n/a")
				continue
			}
			fmt.Printf("  %-7d", n)
		}
		fmt.Println()
	}

	fmt.Println("\nsecurity gain in \"key bits\" (-log2 of attack probability), p = 0.25:")
	for _, n := range []int{3, 5, 9, 15, 25} {
		bits, err := analysis.SecurityGainBits(0.25, n, poolMajority)
		if err != nil {
			return err
		}
		m, err := analysis.RequiredResolverCount(n, poolMajority)
		if err != nil {
			return err
		}
		sd, err := analysis.FractionStdDev(0.25, n)
		if err != nil {
			return err
		}
		fmt.Printf("  N=%-3d  must compromise M=%-2d  ~%5.1f bits  fraction stddev %.3f\n",
			n, m, bits, sd)
	}
	fmt.Println("\nnote: the mean attacker pool fraction stays p regardless of N —")
	fmt.Println("distribution buys concentration (variance ~1/N), which is what makes")
	fmt.Println("majority capture exponentially unlikely (paper, Section III-b).")
	return nil
}
