// Attack demo: the off-path DNS attack of "The Impact of DNS Insecurity
// on Time" [1] poisons a classic single-resolver pool lookup, but fails
// against the paper's distributed-DoH generation.
//
// Two deployments are built side by side:
//
//   - legacy: ONE resolver, whose path the off-path attacker races with
//     per-query success probability 0.3 (e.g. via fragmentation or
//     port-prediction),
//   - distributed: THREE DoH resolvers; the attacker races all three
//     paths with the same per-path probability.
//
// Over many lookups, the legacy pool is majority-poisoned ~30% of the
// time, while the distributed pool requires >= 2 simultaneous wins —
// the binomial tail, ~0.22 at N=3 and falling exponentially as N grows
// (the paper's Section III-b advantage; it requires the per-path success
// probability to be < 1/2 when the attacker races every path).
//
// Run with: go run ./examples/attack
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dohpool/internal/analysis"
	"dohpool/internal/attack"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
)

const (
	attackProb = 0.3
	lookups    = 200
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	fmt.Printf("off-path attacker, per-query success probability %.1f, %d lookups each\n\n",
		attackProb, lookups)

	legacyRate, err := poisonRate(1)
	if err != nil {
		return err
	}
	distributedRate, err := poisonRate(3)
	if err != nil {
		return err
	}

	tail1, err := analysis.BinomialTail(1, 1, attackProb)
	if err != nil {
		return err
	}
	tail3, err := analysis.BinomialTail(3, 2, attackProb)
	if err != nil {
		return err
	}

	fmt.Printf("%-28s %-22s %s\n", "deployment", "pool majority poisoned", "analytical")
	fmt.Printf("%-28s %-22s %.4f\n", "legacy (1 resolver)", legacyRate.String(), tail1)
	fmt.Printf("%-28s %-22s %.4f\n", "distributed DoH (N=3)", distributedRate.String(), tail3)
	fmt.Println("\ndistributed DoH turns one race win into a requirement for simultaneous wins")
	fmt.Println("on a majority of independent resolver paths (paper, Section III-b).")
	return nil
}

// poisonRate measures how often the attacker owns >= 1/2 of the generated
// pool across repeated lookups against an n-resolver deployment.
func poisonRate(n int) (analysis.Estimate, error) {
	all := make([]int, n)
	for i := range all {
		all[i] = i
	}
	tb, err := testbed.Start(testbed.Config{
		Resolvers:            n,
		Adversary:            testbed.AdversaryOffPath,
		OffPathProb:          attackProb,
		Plan:                 attack.FixedPlan(n, all...),
		DisableResolverCache: true,
	})
	if err != nil {
		return analysis.Estimate{}, err
	}
	defer tb.Close()

	gen, err := tb.Generator(testbed.GeneratorOptions{})
	if err != nil {
		return analysis.Estimate{}, err
	}
	return analysis.MonteCarlo(lookups, func(int) (bool, error) {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			return false, err
		}
		return core.Fraction(pool.Addrs, attack.IsAttackerAddr) >= 0.5, nil
	})
}
