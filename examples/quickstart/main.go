// Quickstart: generate a consensus-backed server pool with Algorithm 1,
// running the engine in its always-warm configuration.
//
// The example boots a self-contained Figure 1 testbed on loopback (three
// authoritative pool nameservers, three DoH resolvers) so it runs without
// network access, then uses the public dohpool API exactly as a real
// deployment would use dns.google / cloudflare-dns.com / dns.quad9.net:
// refresh-ahead regenerates popular pools in the background at 80% of
// their TTL, stale-while-revalidate bridges resolver hiccups, and the
// admin server's /poolz endpoint shows each cached pool's refresh state.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"time"

	"dohpool"
	"dohpool/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot a local stand-in for the public DoH resolver ecosystem.
	tb, err := testbed.Start(testbed.Config{})
	if err != nil {
		return fmt.Errorf("start testbed: %w", err)
	}
	defer tb.Close()

	// The public API: three distributed DoH resolvers, strict quorum,
	// and the always-warm engine configuration.
	cfg := dohpool.Config{
		TLSConfig: tb.CA.ClientTLS(),

		// Always-warm knobs: regenerate a cached pool in the background
		// once it has lived 80% of its TTL, but only pools that were
		// actually read since generation (MinHits); keep serving an
		// expired pool for up to 30s while a refresh is in flight.
		Refresh: dohpool.RefreshConfig{Ahead: 0.8, MinHits: 1},
		Cache: dohpool.CacheConfig{
			StaleWhileRevalidate: 30 * time.Second,
			// Sharded pool cache: one lock domain per core (0 = automatic).
			Shards: 0,
		},

		// Observability on an ephemeral loopback port.
		Serve: dohpool.ServeConfig{AdminAddr: "127.0.0.1:0"},
	}
	for _, ep := range tb.Endpoints {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{Name: ep.Name, URL: ep.URL})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		return fmt.Errorf("build client: %w", err)
	}
	defer client.Close()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pool, err := client.LookupPool(ctx, tb.Domain())
	if err != nil {
		return fmt.Errorf("lookup pool: %w", err)
	}

	fmt.Printf("queried %d DoH resolvers for %s\n", client.ResolverCount(), tb.Domain())
	for _, pr := range pool.PerResolver {
		fmt.Printf("  %-12s %d answers in %v\n",
			pr.Resolver.Name, len(pr.Addrs), pr.RTT.Round(time.Millisecond))
	}
	fmt.Printf("truncate length K = %d (shortest list)\n", pool.TruncateLength)
	fmt.Printf("combined pool (%d entries, duplicates count individually):\n", len(pool.Addrs))
	for i, addr := range pool.Addrs {
		fmt.Printf("  [resolver %d] %v\n", i/pool.TruncateLength, addr)
	}

	// A few repeat lookups: all served from the sharded cache, and each
	// hit feeds the refresher's popularity signal.
	for i := 0; i < 3; i++ {
		if _, err := client.LookupPool(ctx, tb.Domain()); err != nil {
			return fmt.Errorf("cached lookup: %w", err)
		}
	}

	// Inspect the always-warm state the way an operator would: the
	// admin server's /poolz lists every cached pool with its hit count,
	// background refreshes and the latest refresh outcome.
	resp, err := http.Get("http://" + client.AdminAddr() + "/poolz")
	if err != nil {
		return fmt.Errorf("GET /poolz: %w", err)
	}
	defer resp.Body.Close()
	var pools struct {
		Pools []struct {
			Key         string  `json:"key"`
			TTLSeconds  float64 `json:"ttl_seconds"`
			Hits        uint64  `json:"hits"`
			Refreshes   uint64  `json:"refreshes"`
			LastRefresh string  `json:"last_refresh"`
		} `json:"pools"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&pools); err != nil {
		return fmt.Errorf("decode /poolz: %w", err)
	}
	fmt.Println("\ncached pools (admin /poolz):")
	for _, p := range pools.Pools {
		fmt.Printf("  %-24s ttl=%.0fs hits=%d refreshes=%d last_refresh=%s\n",
			p.Key, p.TTLSeconds, p.Hits, p.Refreshes, p.LastRefresh)
	}
	fmt.Println("\nwith RefreshAhead set, this pool is regenerated in the")
	fmt.Println("background at 80% of its TTL — a long-running deployment")
	fmt.Println("never pays an inline fan-out for it again.")
	return nil
}
