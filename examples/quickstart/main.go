// Quickstart: generate a consensus-backed server pool with Algorithm 1.
//
// The example boots a self-contained Figure 1 testbed on loopback (three
// authoritative pool nameservers, three DoH resolvers) so it runs without
// network access, then uses the public dohpool API exactly as a real
// deployment would use dns.google / cloudflare-dns.com / dns.quad9.net.
//
// Run with: go run ./examples/quickstart
package main

import (
	"context"
	"fmt"
	"log"
	"time"

	"dohpool"
	"dohpool/internal/testbed"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Boot a local stand-in for the public DoH resolver ecosystem.
	tb, err := testbed.Start(testbed.Config{})
	if err != nil {
		return fmt.Errorf("start testbed: %w", err)
	}
	defer tb.Close()

	// The public API: three distributed DoH resolvers, strict quorum.
	cfg := dohpool.Config{TLSConfig: tb.CA.ClientTLS()}
	for _, ep := range tb.Endpoints {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{Name: ep.Name, URL: ep.URL})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		return fmt.Errorf("build client: %w", err)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	pool, err := client.LookupPool(ctx, tb.Domain())
	if err != nil {
		return fmt.Errorf("lookup pool: %w", err)
	}

	fmt.Printf("queried %d DoH resolvers for %s\n", client.ResolverCount(), tb.Domain())
	for _, pr := range pool.PerResolver {
		fmt.Printf("  %-12s %d answers in %v\n",
			pr.Resolver.Name, len(pr.Addrs), pr.RTT.Round(time.Millisecond))
	}
	fmt.Printf("truncate length K = %d (shortest list)\n", pool.TruncateLength)
	fmt.Printf("combined pool (%d entries, duplicates count individually):\n", len(pool.Addrs))
	for i, addr := range pool.Addrs {
		fmt.Printf("  [resolver %d] %v\n", i/pool.TruncateLength, addr)
	}
	return nil
}
