// Command dohquery performs one secure pool lookup through a set of DoH
// resolvers and prints the combined pool: a dig-like one-shot interface
// to Algorithm 1.
//
// Usage:
//
//	dohquery -resolver https://dns.google/dns-query \
//	         -resolver https://cloudflare-dns.com/dns-query \
//	         -resolver https://dns.quad9.net/dns-query \
//	         pool.ntp.org
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"time"

	"dohpool"
	"dohpool/internal/testpki"
)

type resolverList []string

func (r *resolverList) String() string { return fmt.Sprint(*r) }

func (r *resolverList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dohquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dohquery", flag.ContinueOnError)
	var resolvers resolverList
	var (
		ipv6     = fs.Bool("6", false, "query AAAA instead of A")
		majority = fs.Bool("majority", false, "also print the majority-filtered set")
		quorum   = fs.Int("quorum", 0, "resolvers that must answer (0 = all)")
		timeout  = fs.Duration("timeout", 5*time.Second, "overall lookup timeout")
		useGET   = fs.Bool("get", false, "use RFC 8484 GET instead of POST")
	)
	caFile := fs.String("ca", "", "PEM file with additional trusted CA (testbed interop)")
	fs.Var(&resolvers, "resolver", "DoH endpoint URL (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dohquery [flags] <domain>")
	}
	domain := fs.Arg(0)
	if len(resolvers) == 0 {
		return fmt.Errorf("at least one -resolver is required")
	}

	cfg := dohpool.Config{
		MinResolvers: *quorum,
		WithMajority: *majority,
		UseGET:       *useGET,
	}
	if *caFile != "" {
		pemBytes, err := os.ReadFile(*caFile)
		if err != nil {
			return fmt.Errorf("read -ca file: %w", err)
		}
		pool, err := testpki.PoolFromPEM(pemBytes)
		if err != nil {
			return fmt.Errorf("parse -ca file: %w", err)
		}
		cfg.TLSConfig = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	}
	for i, url := range resolvers {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{
			Name: fmt.Sprintf("resolver-%d", i),
			URL:  url,
		})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	lookup := client.LookupPool
	if *ipv6 {
		lookup = client.LookupPoolIPv6
	}
	pool, err := lookup(ctx, domain)
	if err != nil {
		return err
	}

	for _, pr := range pool.PerResolver {
		if pr.Err != nil {
			fmt.Printf(";; %-12s FAILED: %v\n", pr.Resolver.Name, pr.Err)
			continue
		}
		fmt.Printf(";; %-12s %2d answers in %v\n",
			pr.Resolver.Name, len(pr.Addrs), pr.RTT.Round(time.Millisecond))
	}
	fmt.Printf(";; truncate length K = %d, pool size = %d\n", pool.TruncateLength, len(pool.Addrs))
	for _, a := range pool.Addrs {
		fmt.Println(a)
	}
	if *majority {
		fmt.Printf(";; majority-confirmed (%d):\n", len(pool.Majority))
		for _, a := range pool.Majority {
			fmt.Println(a)
		}
	}
	return nil
}
