// Command dohquery performs one secure pool lookup through a set of DoH
// resolvers and prints the combined pool: a dig-like one-shot interface
// to Algorithm 1.
//
// Usage:
//
//	dohquery -resolver https://dns.google/dns-query \
//	         -resolver https://cloudflare-dns.com/dns-query \
//	         -resolver https://dns.quad9.net/dns-query \
//	         pool.ntp.org
//
// With -doh or -dot it instead speaks the encrypted serving transports
// of a running dohpoold directly — one RFC 8484 or RFC 7858 exchange
// against the daemon, printing the pool answer it serves — so scripted
// checks (the chaos smoke, the testbed) can exercise the full encrypted
// stack end to end:
//
//	dohquery -ca ca.pem -doh https://127.0.0.1:8443/dns-query pool.ntppool.test
//	dohquery -ca ca.pem -dot 127.0.0.1:8853 pool.ntppool.test
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"time"

	"dohpool"
	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/testpki"
	"dohpool/internal/transport"
)

type resolverList []string

func (r *resolverList) String() string { return fmt.Sprint(*r) }

func (r *resolverList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dohquery:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dohquery", flag.ContinueOnError)
	var resolvers resolverList
	var (
		ipv6     = fs.Bool("6", false, "query AAAA instead of A")
		majority = fs.Bool("majority", false, "also print the majority-filtered set")
		quorum   = fs.Int("quorum", 0, "resolvers that must answer (0 = all)")
		timeout  = fs.Duration("timeout", 5*time.Second, "overall lookup timeout")
		useGET   = fs.Bool("get", false, "use RFC 8484 GET instead of POST")
		dohURL   = fs.String("doh", "", "query this DoH endpoint URL directly (single exchange against a serving daemon)")
		dotAddr  = fs.String("dot", "", "query this DoT server host:port directly (single exchange against a serving daemon)")
	)
	caFile := fs.String("ca", "", "PEM file with additional trusted CA (testbed interop)")
	fs.Var(&resolvers, "resolver", "DoH endpoint URL (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if fs.NArg() != 1 {
		return fmt.Errorf("usage: dohquery [flags] <domain>")
	}
	domain := fs.Arg(0)
	if *dohURL != "" || *dotAddr != "" {
		if len(resolvers) > 0 {
			// Direct mode is one exchange against a serving daemon; a
			// -resolver list would be silently dropped, which reads like
			// a consensus lookup that never happened.
			return fmt.Errorf("direct mode (-doh/-dot) cannot be combined with -resolver; pick one")
		}
		return runDirect(directOptions{
			dohURL:  *dohURL,
			dotAddr: *dotAddr,
			caFile:  *caFile,
			domain:  domain,
			ipv6:    *ipv6,
			useGET:  *useGET,
			timeout: *timeout,
		})
	}
	if len(resolvers) == 0 {
		return fmt.Errorf("at least one -resolver is required")
	}

	cfg := dohpool.Config{
		MinResolvers: *quorum,
		WithMajority: *majority,
		UseGET:       *useGET,
	}
	if *caFile != "" {
		tlsCfg, err := caTLSConfig(*caFile)
		if err != nil {
			return err
		}
		cfg.TLSConfig = tlsCfg
	}
	for i, url := range resolvers {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{
			Name: fmt.Sprintf("resolver-%d", i),
			URL:  url,
		})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		return err
	}

	ctx, cancel := context.WithTimeout(context.Background(), *timeout)
	defer cancel()
	lookup := client.LookupPool
	if *ipv6 {
		lookup = client.LookupPoolIPv6
	}
	pool, err := lookup(ctx, domain)
	if err != nil {
		return err
	}

	for _, pr := range pool.PerResolver {
		if pr.Err != nil {
			fmt.Printf(";; %-12s FAILED: %v\n", pr.Resolver.Name, pr.Err)
			continue
		}
		fmt.Printf(";; %-12s %2d answers in %v\n",
			pr.Resolver.Name, len(pr.Addrs), pr.RTT.Round(time.Millisecond))
	}
	fmt.Printf(";; truncate length K = %d, pool size = %d\n", pool.TruncateLength, len(pool.Addrs))
	for _, a := range pool.Addrs {
		fmt.Println(a)
	}
	if *majority {
		fmt.Printf(";; majority-confirmed (%d):\n", len(pool.Majority))
		for _, a := range pool.Majority {
			fmt.Println(a)
		}
	}
	return nil
}

// caTLSConfig builds a client TLS config trusting the -ca file's CAs.
func caTLSConfig(caFile string) (*tls.Config, error) {
	pemBytes, err := os.ReadFile(caFile)
	if err != nil {
		return nil, fmt.Errorf("read -ca file: %w", err)
	}
	pool, err := testpki.PoolFromPEM(pemBytes)
	if err != nil {
		return nil, fmt.Errorf("parse -ca file: %w", err)
	}
	return &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}, nil
}

// directOptions parameterizes the -doh/-dot single-exchange mode.
type directOptions struct {
	dohURL  string
	dotAddr string
	caFile  string
	domain  string
	ipv6    bool
	useGET  bool
	timeout time.Duration
}

// runDirect speaks the daemon's encrypted serving transports: one DoH
// and/or one DoT exchange, printing the served pool. It fails (non-zero
// exit) on any transport error, a non-NOERROR response code or an empty
// answer — exactly the checks scripted smoke tests need.
func runDirect(opts directOptions) error {
	tlsCfg := &tls.Config{MinVersion: tls.VersionTLS12}
	if opts.caFile != "" {
		var err error
		if tlsCfg, err = caTLSConfig(opts.caFile); err != nil {
			return err
		}
	}
	typ := dnswire.TypeA
	if opts.ipv6 {
		typ = dnswire.TypeAAAA
	}
	ctx, cancel := context.WithTimeout(context.Background(), opts.timeout)
	defer cancel()

	check := func(proto string, resp *dnswire.Message, err error) error {
		if err != nil {
			return fmt.Errorf("%s exchange: %w", proto, err)
		}
		if resp.Header.RCode != dnswire.RCodeSuccess {
			return fmt.Errorf("%s exchange: rcode %v", proto, resp.Header.RCode)
		}
		addrs := resp.AnswerAddrs()
		if len(addrs) == 0 {
			return fmt.Errorf("%s exchange: empty answer", proto)
		}
		fmt.Printf(";; %s %2d answers\n", proto, len(addrs))
		for _, a := range addrs {
			fmt.Println(a)
		}
		return nil
	}

	if opts.dohURL != "" {
		clientOpts := []doh.ClientOption{doh.WithTLSConfig(tlsCfg)}
		if opts.useGET {
			clientOpts = append(clientOpts, doh.WithMethod(doh.MethodGET))
		}
		resp, err := doh.NewClient(clientOpts...).Query(ctx, opts.dohURL, opts.domain, typ)
		if err := check("doh", resp, err); err != nil {
			return err
		}
	}
	if opts.dotAddr != "" {
		query, err := dnswire.NewQuery(opts.domain, typ)
		if err != nil {
			return err
		}
		dot := &transport.DoT{TLSConfig: tlsCfg}
		resp, err := dot.Exchange(ctx, query, opts.dotAddr)
		if err := check("dot", resp, err); err != nil {
			return err
		}
	}
	return nil
}
