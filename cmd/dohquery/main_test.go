package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dohpool/internal/testbed"
)

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"no domain", []string{"-resolver", "https://x/dns-query"}, "usage"},
		{"two domains", []string{"-resolver", "https://x/dns-query", "a.test", "b.test"}, "usage"},
		{"no resolver", []string{"pool.ntp.org"}, "-resolver"},
		{"bad flag", []string{"-bogus"}, "not defined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil {
				t.Fatal("run succeeded")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestResolverListFlag(t *testing.T) {
	var rl resolverList
	if err := rl.Set("https://a/dns-query"); err != nil {
		t.Fatal(err)
	}
	if err := rl.Set("https://b/dns-query"); err != nil {
		t.Fatal(err)
	}
	if len(rl) != 2 {
		t.Fatalf("list = %v", rl)
	}
	if rl.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunAgainstDeadResolverFails(t *testing.T) {
	err := run([]string{
		"-resolver", "https://127.0.0.1:1/dns-query",
		"-timeout", "300ms",
		"pool.ntp.test",
	})
	if err == nil {
		t.Fatal("lookup against dead resolver succeeded")
	}
}

func TestRunAgainstTestbedWithCA(t *testing.T) {
	tb, err := testbed.Start(testbed.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })

	caPath := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(caPath, tb.CA.CertPEM(), 0o600); err != nil {
		t.Fatal(err)
	}

	args := []string{"-ca", caPath, "-majority"}
	for _, ep := range tb.Endpoints {
		args = append(args, "-resolver", ep.URL)
	}
	args = append(args, tb.Domain())
	if err := run(args); err != nil {
		t.Fatalf("dohquery against testbed: %v", err)
	}
}

func TestRunRejectsBadCAFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "junk.pem")
	if err := os.WriteFile(bad, []byte("not a cert"), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-ca", bad, "-resolver", "https://x/dns-query", "d.test"})
	if err == nil || !strings.Contains(err.Error(), "parse -ca") {
		t.Fatalf("err = %v", err)
	}
	err = run([]string{"-ca", "/no/such/file", "-resolver", "https://x/dns-query", "d.test"})
	if err == nil || !strings.Contains(err.Error(), "read -ca") {
		t.Fatalf("err = %v", err)
	}
}
