package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dohpool"
	"dohpool/internal/testbed"
)

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"no domain", []string{"-resolver", "https://x/dns-query"}, "usage"},
		{"two domains", []string{"-resolver", "https://x/dns-query", "a.test", "b.test"}, "usage"},
		{"no resolver", []string{"pool.ntp.org"}, "-resolver"},
		{"bad flag", []string{"-bogus"}, "not defined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil {
				t.Fatal("run succeeded")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want mention of %q", err, tt.want)
			}
		})
	}
}

func TestResolverListFlag(t *testing.T) {
	var rl resolverList
	if err := rl.Set("https://a/dns-query"); err != nil {
		t.Fatal(err)
	}
	if err := rl.Set("https://b/dns-query"); err != nil {
		t.Fatal(err)
	}
	if len(rl) != 2 {
		t.Fatalf("list = %v", rl)
	}
	if rl.String() == "" {
		t.Error("empty String()")
	}
}

func TestRunAgainstDeadResolverFails(t *testing.T) {
	err := run([]string{
		"-resolver", "https://127.0.0.1:1/dns-query",
		"-timeout", "300ms",
		"pool.ntp.test",
	})
	if err == nil {
		t.Fatal("lookup against dead resolver succeeded")
	}
}

func TestRunAgainstTestbedWithCA(t *testing.T) {
	tb, err := testbed.Start(testbed.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })

	caPath := filepath.Join(t.TempDir(), "ca.pem")
	if err := os.WriteFile(caPath, tb.CA.CertPEM(), 0o600); err != nil {
		t.Fatal(err)
	}

	args := []string{"-ca", caPath, "-majority"}
	for _, ep := range tb.Endpoints {
		args = append(args, "-resolver", ep.URL)
	}
	args = append(args, tb.Domain())
	if err := run(args); err != nil {
		t.Fatalf("dohquery against testbed: %v", err)
	}
}

// TestRunDirectAgainstServingDaemon drives the -doh and -dot modes
// against an in-process daemon serving the encrypted transports — the
// exact path the chaos smoke scripts.
func TestRunDirectAgainstServingDaemon(t *testing.T) {
	tb, err := testbed.Start(testbed.Config{})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })

	cfg := dohpool.Config{
		TLSConfig: tb.CA.ClientTLS(),
		Serve: dohpool.ServeConfig{
			DoHAddr:       "127.0.0.1:0",
			DoTAddr:       "127.0.0.1:0",
			TLSSelfSigned: true,
		},
	}
	for _, ep := range tb.Endpoints {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{Name: ep.Name, URL: ep.URL})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	fe, err := client.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	caPath := filepath.Join(t.TempDir(), "serving-ca.pem")
	if err := os.WriteFile(caPath, client.ServingCAPEM(), 0o600); err != nil {
		t.Fatal(err)
	}

	// One invocation exercising both encrypted transports, plus the GET
	// method over DoH.
	args := []string{"-ca", caPath,
		"-doh", "https://" + fe.DoHAddr() + "/dns-query",
		"-dot", fe.DoTAddr(),
		tb.Domain()}
	if err := run(args); err != nil {
		t.Fatalf("dohquery direct mode: %v", err)
	}
	if err := run(append([]string{"-get"}, args...)); err != nil {
		t.Fatalf("dohquery direct GET mode: %v", err)
	}

	// Without the serving CA the handshake must fail.
	if err := run([]string{"-dot", fe.DoTAddr(), "-timeout", "2s", tb.Domain()}); err == nil {
		t.Fatal("dohquery trusted an unknown serving certificate")
	}

	// Mixing direct mode with a -resolver list must be rejected, not
	// silently resolved one way.
	err = run([]string{"-resolver", tb.Endpoints[0].URL, "-dot", fe.DoTAddr(), tb.Domain()})
	if err == nil || !strings.Contains(err.Error(), "direct mode") {
		t.Fatalf("err = %v, want direct-mode/-resolver conflict", err)
	}
}

func TestRunRejectsBadCAFile(t *testing.T) {
	bad := filepath.Join(t.TempDir(), "junk.pem")
	if err := os.WriteFile(bad, []byte("not a cert"), 0o600); err != nil {
		t.Fatal(err)
	}
	err := run([]string{"-ca", bad, "-resolver", "https://x/dns-query", "d.test"})
	if err == nil || !strings.Contains(err.Error(), "parse -ca") {
		t.Fatalf("err = %v", err)
	}
	err = run([]string{"-ca", "/no/such/file", "-resolver", "https://x/dns-query", "d.test"})
	if err == nil || !strings.Contains(err.Error(), "read -ca") {
		t.Fatalf("err = %v", err)
	}
}
