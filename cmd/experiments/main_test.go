package main

import (
	"testing"
)

func TestRunSingleExperiment(t *testing.T) {
	// E1 is fast and exercises the whole printing path.
	if err := run([]string{"-run", "E1", "-trials", "50", "-pipeline-trials", "10"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunMarkdownMode(t *testing.T) {
	if err := run([]string{"-run", "e5", "-markdown"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownIDIsNoop(t *testing.T) {
	// Unknown ids select nothing; that is not an error.
	if err := run([]string{"-run", "E99"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRejectsBadFlags(t *testing.T) {
	if err := run([]string{"-trials", "NaN"}); err == nil {
		t.Fatal("bad flag value accepted")
	}
}
