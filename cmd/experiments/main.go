// Command experiments regenerates every evaluation artefact of the paper
// (see DESIGN.md's experiment index) against the loopback testbed and
// prints the resulting tables.
//
// Usage:
//
//	experiments                 # run everything
//	experiments -run E3,E5      # run a subset
//	experiments -trials 5000    # more Monte-Carlo precision
//	experiments -markdown       # emit EXPERIMENTS.md-ready markdown
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"dohpool/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	var (
		runList        = fs.String("run", "", "comma-separated experiment ids (default: all)")
		trials         = fs.Int("trials", 2000, "Monte-Carlo trials per data point")
		pipelineTrials = fs.Int("pipeline-trials", 300, "Monte-Carlo trials over the real testbed")
		seed           = fs.Int64("seed", 20201019, "random seed")
		markdown       = fs.Bool("markdown", false, "emit markdown tables")
		csv            = fs.Bool("csv", false, "emit CSV tables (for plotting)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	want := map[string]bool{}
	for _, id := range strings.Split(*runList, ",") {
		if id = strings.TrimSpace(strings.ToUpper(id)); id != "" {
			want[id] = true
		}
	}

	opts := experiments.Options{
		Trials:         *trials,
		PipelineTrials: *pipelineTrials,
		Seed:           *seed,
	}

	failures := 0
	for _, runner := range experiments.All() {
		if len(want) > 0 && !want[runner.ID] {
			continue
		}
		start := time.Now()
		table, err := runner.Run(opts)
		elapsed := time.Since(start).Round(time.Millisecond)
		if table != nil {
			switch {
			case *csv:
				fmt.Printf("# %s: %s\n%s\n", table.ID, table.Title, table.CSV())
			case *markdown:
				fmt.Println(table.Markdown())
			default:
				fmt.Println(table.Render())
			}
		}
		if err != nil {
			failures++
			fmt.Fprintf(os.Stderr, "%s FAILED (%v): %v\n\n", runner.ID, elapsed, err)
			continue
		}
		fmt.Printf("%s ok (%v)\n\n", runner.ID, elapsed)
	}
	if failures > 0 {
		return fmt.Errorf("%d experiment(s) failed", failures)
	}
	return nil
}
