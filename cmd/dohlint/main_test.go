package main

import (
	"encoding/json"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
)

// buildDohlint compiles the dohlint binary once per test binary into a
// temp dir and returns its path.
func buildDohlint(t *testing.T) string {
	t.Helper()
	bin := filepath.Join(t.TempDir(), "dohlint")
	cmd := exec.Command("go", "build", "-o", bin, "dohpool/cmd/dohlint")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("building dohlint: %v\n%s", err, out)
	}
	return bin
}

func moduleRoot(t *testing.T) string {
	t.Helper()
	root, err := filepath.Abs("../..")
	if err != nil {
		t.Fatal(err)
	}
	return root
}

// writeModule materialises a throwaway single-package module.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module tmpfix\n\ngo 1.23\n"
	for name, content := range files {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

// TestVetToolProtocol drives the full cmd/go integration: go vet
// invokes dohlint with -V=full, -flags and a vet.cfg per unit, and must
// surface a seeded buildtag violation with its precise position.
func TestVetToolProtocol(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and runs go vet")
	}
	bin := buildDohlint(t)

	t.Run("seeded violation", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"a.go": "package tmpfix\n\nconst sysDemo = 299\n",
		})
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		out, err := cmd.CombinedOutput()
		if err == nil {
			t.Fatalf("go vet passed on a seeded violation:\n%s", out)
		}
		if !strings.Contains(string(out), "pins syscall numbers but has no explicit //go:build constraint") {
			t.Fatalf("diagnostic missing from vet output:\n%s", out)
		}
		if !strings.Contains(string(out), "a.go:3:7") {
			t.Fatalf("vet output lacks the precise position a.go:3:7:\n%s", out)
		}
	})

	t.Run("clean module", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"a.go": "package tmpfix\n\nfunc ok() int { return 1 }\n",
		})
		cmd := exec.Command("go", "vet", "-vettool="+bin, "./...")
		cmd.Dir = dir
		if out, err := cmd.CombinedOutput(); err != nil {
			t.Fatalf("go vet failed on a clean module: %v\n%s", err, out)
		}
	})
}

// TestStandaloneCleanTree runs the standalone mode over the repository
// itself: the tree must stay dohlint-clean.
func TestStandaloneCleanTree(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary and analyzes the whole module")
	}
	bin := buildDohlint(t)
	cmd := exec.Command(bin, "./...")
	cmd.Dir = moduleRoot(t)
	if out, err := cmd.CombinedOutput(); err != nil {
		t.Fatalf("dohlint found diagnostics in the tree: %v\n%s", err, out)
	}
}

// TestVersionHandshake checks the -V=full contract cmd/go keys its
// analysis cache on.
func TestVersionHandshake(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildDohlint(t)
	out, err := exec.Command(bin, "-V=full").CombinedOutput()
	if err != nil {
		t.Fatalf("-V=full: %v\n%s", err, out)
	}
	fields := strings.Fields(string(out))
	if len(fields) < 3 || fields[1] != "version" || !strings.Contains(string(out), "buildID=") {
		t.Fatalf("-V=full output %q does not match the vet handshake shape", out)
	}
}

// TestJSONOutput drives the -json mode: findings come back as a parsed
// JSON array on stdout (the CI artifact contract), and a clean run
// still emits a well-formed empty array.
func TestJSONOutput(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a binary")
	}
	bin := buildDohlint(t)

	t.Run("seeded violation", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"a.go": "package tmpfix\n\nconst sysDemo = 299\n",
		})
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = dir
		out, err := cmd.Output()
		exitErr, isExit := err.(*exec.ExitError)
		if !isExit || exitErr.ExitCode() != 2 {
			t.Fatalf("want exit 2 on findings, got %v\n%s", err, out)
		}
		var diags []struct {
			File     string `json:"file"`
			Line     int    `json:"line"`
			Col      int    `json:"col"`
			Analyzer string `json:"analyzer"`
			Message  string `json:"message"`
		}
		if err := json.Unmarshal(out, &diags); err != nil {
			t.Fatalf("stdout is not a JSON diagnostic array: %v\n%s", err, out)
		}
		if len(diags) == 0 {
			t.Fatal("no diagnostics decoded for a seeded violation")
		}
		d := diags[0]
		if filepath.Base(d.File) != "a.go" || d.Line != 3 || d.Analyzer != "buildtag" ||
			!strings.Contains(d.Message, "no explicit //go:build constraint") {
			t.Fatalf("unexpected diagnostic fields: %+v", d)
		}
	})

	t.Run("clean module", func(t *testing.T) {
		dir := writeModule(t, map[string]string{
			"a.go": "package tmpfix\n\nfunc ok() int { return 1 }\n",
		})
		cmd := exec.Command(bin, "-json", "./...")
		cmd.Dir = dir
		out, err := cmd.Output()
		if err != nil {
			t.Fatalf("clean module: %v\n%s", err, out)
		}
		if strings.TrimSpace(string(out)) != "[]" {
			t.Fatalf("clean -json run must emit an empty array, got %q", out)
		}
	})
}
