// Command dohlint is dohpool's project-specific static-analysis tool:
// the seven internal/lint analyzers (noalloc, metricsname, configalias,
// buildtag, lockcheck, atomiccheck, golifecycle) plus the
// escape-analysis allocation gate.
//
// Three modes:
//
//	dohlint [packages]           standalone: analyze packages (default ./...)
//	dohlint escape [packages]    compile with -m=1 and fail on heap escapes
//	                             inside //dohlint:noalloc functions
//	go vet -vettool=$(which dohlint) [packages]
//	                             as a vet tool, speaking cmd/go's vet
//	                             unit-checker protocol (-V=full, -flags,
//	                             then one invocation per package unit
//	                             with a vet.cfg)
//
// Diagnostics print as file:line:col: analyzer: message, or — with
// -json anywhere on the command line — as a JSON array of
// {file,line,col,analyzer,message} objects on stdout, so CI can attach
// findings as a greppable artifact. Exit status: 0 clean, 1
// operational error, 2 diagnostics reported.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"go/token"
	"io"
	"os"
	"path/filepath"
	"strings"

	"dohpool/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:]))
}

func run(args []string) int {
	// Vet protocol handshake flags come first and alone.
	for _, a := range args {
		switch {
		case strings.HasPrefix(a, "-V"):
			return printVersion()
		case a == "-flags":
			fmt.Println("[]")
			return 0
		}
	}
	// -json switches report() to machine-readable output; it can sit
	// anywhere before the patterns.
	filtered := args[:0:0]
	for _, a := range args {
		if a == "-json" || a == "--json" {
			jsonOutput = true
			continue
		}
		filtered = append(filtered, a)
	}
	args = filtered
	// A .cfg argument means cmd/go invoked us as a vet tool.
	for _, a := range args {
		if strings.HasSuffix(a, ".cfg") {
			return runVetUnit(a)
		}
	}
	if len(args) > 0 && args[0] == "escape" {
		return runEscape(args[1:])
	}
	if len(args) > 0 && args[0] == "help" {
		printHelp()
		return 0
	}
	return runStandalone(args)
}

// printVersion answers `dohlint -V=full`. cmd/go demands a reproducible
// version string to key its analysis cache; hashing our own executable
// means a rebuilt dohlint invalidates cached results, exactly like the
// upstream unitchecker.
func printVersion() int {
	exe, err := os.Executable()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	f, err := os.Open(exe)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", filepath.Base(exe), h.Sum(nil))
	return 0
}

func printHelp() {
	fmt.Println("dohlint: dohpool static analysis")
	fmt.Println()
	fmt.Println("usage: dohlint [packages]          run analyzers (default ./...)")
	fmt.Println("       dohlint escape [packages]   escape-analysis allocation gate")
	fmt.Println("       go vet -vettool=$(which dohlint) [packages]")
	fmt.Println()
	fmt.Println("analyzers:")
	for _, a := range lint.All() {
		fmt.Printf("  %-12s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("  %-12s backs noalloc with the compiler's -m escape diagnostics\n", "escape")
}

// vetConfig is the JSON unit description cmd/go hands a vet tool, one
// per package build unit (the subset of fields dohlint consumes).
type vetConfig struct {
	ID                        string
	Dir                       string
	ImportPath                string
	GoFiles                   []string
	ImportMap                 map[string]string
	PackageFile               map[string]string
	VetxOnly                  bool
	VetxOutput                string
	SucceedOnTypecheckFailure bool
}

// runVetUnit analyzes one vet unit. Facts files are written even when
// empty — cmd/go treats the VetxOutput as the action's build artifact
// and fails the run if it is missing.
func runVetUnit(cfgPath string) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fmt.Fprintf(os.Stderr, "dohlint: parsing %s: %v\n", cfgPath, err)
		return 1
	}
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("dohlint-facts\n"), 0o666); err != nil {
			fmt.Fprintln(os.Stderr, "dohlint:", err)
			return 1
		}
	}
	if cfg.VetxOnly {
		return 0
	}
	// Test variants ("pkg [pkg.test]", "pkg_test [pkg.test]") re-present
	// the same non-test sources plus test files. The analyzers skip test
	// files by design, so analyzing those units would only duplicate
	// every diagnostic; the plain library unit covers the tree.
	if strings.Contains(cfg.ID, " [") || strings.HasSuffix(cfg.ImportPath, ".test") {
		return 0
	}
	if len(cfg.GoFiles) == 0 {
		return 0
	}
	pkg, err := typeCheckUnit(&cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	diags, err := lint.RunAnalyzers(pkg, lint.All())
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	return report(diags)
}

func typeCheckUnit(cfg *vetConfig) (*lint.LoadedPackage, error) {
	fset := token.NewFileSet()
	return lint.TypeCheck(fset, cfg.ImportPath, cfg.Dir, cfg.GoFiles, cfg.PackageFile, cfg.ImportMap)
}

func runStandalone(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	pkgs, err := lint.Load(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	var all []lint.Diagnostic
	for _, pkg := range pkgs {
		diags, err := lint.RunAnalyzers(pkg, lint.All())
		if err != nil {
			fmt.Fprintln(os.Stderr, "dohlint:", err)
			return 1
		}
		all = append(all, diags...)
	}
	return report(all)
}

func runEscape(patterns []string) int {
	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	diags, err := lint.EscapeGate(cwd, patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "dohlint:", err)
		return 1
	}
	return report(diags)
}

// jsonOutput makes report emit a JSON array on stdout instead of the
// human file:line:col lines on stderr.
var jsonOutput bool

// jsonDiagnostic is the machine-readable diagnostic shape emitted by
// `dohlint -json` and archived by the CI lint job.
type jsonDiagnostic struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Col      int    `json:"col"`
	Analyzer string `json:"analyzer"`
	Message  string `json:"message"`
}

// report prints diagnostics and returns the process exit code: 2 with
// findings (the conventional vet-tool diagnostic exit), 0 clean. Human
// output goes to stderr; -json always writes a well-formed (possibly
// empty) array to stdout so the artifact exists even on a clean run.
func report(diags []lint.Diagnostic) int {
	if jsonOutput {
		out := make([]jsonDiagnostic, 0, len(diags))
		for _, d := range diags {
			out = append(out, jsonDiagnostic{
				File:     d.Pos.Filename,
				Line:     d.Pos.Line,
				Col:      d.Pos.Column,
				Analyzer: d.Analyzer,
				Message:  d.Message,
			})
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(out); err != nil {
			fmt.Fprintln(os.Stderr, "dohlint:", err)
			return 1
		}
		if len(diags) == 0 {
			return 0
		}
		return 2
	}
	if len(diags) == 0 {
		return 0
	}
	for _, d := range diags {
		fmt.Fprintln(os.Stderr, d.String())
	}
	return 2
}
