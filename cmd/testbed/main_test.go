package main

import (
	"strings"
	"testing"
)

func TestRunValidation(t *testing.T) {
	tests := []struct {
		name string
		args []string
		want string
	}{
		{"bad adversary", []string{"-adversary", "martian"}, "unknown adversary"},
		{"bad payload", []string{"-payload", "glitter"}, "unknown payload"},
		{"bad compromised", []string{"-compromised", "zero,one"}, "bad -compromised"},
		{"bad flag", []string{"-frobnicate"}, "not defined"},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			err := run(tt.args)
			if err == nil {
				t.Fatal("run succeeded")
			}
			if !strings.Contains(err.Error(), tt.want) {
				t.Fatalf("err = %v, want mention of %q", err, tt.want)
			}
		})
	}
}
