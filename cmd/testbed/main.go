// Command testbed starts the complete Figure 1 deployment on loopback —
// authoritative pool nameservers, N DoH resolvers with individual TLS
// identities, and optionally a configured adversary — then prints the
// endpoints so dohquery/dohpoold (or your own client) can be pointed at
// it. It runs until interrupted.
//
// Usage:
//
//	testbed -resolvers 5 -adversary resolver -compromised 0,1
//
// Note: the testbed uses a private CA, so external clients must skip
// verification or be handed the CA; the in-repo tools connect through the
// library which trusts it automatically when run from examples.
package main

import (
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"

	"dohpool/internal/attack"
	"dohpool/internal/cliflags"
	"dohpool/internal/testbed"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "testbed:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("testbed", flag.ContinueOnError)
	var (
		resolvers   = fs.Int("resolvers", 3, "number of DoH resolvers (N)")
		authServers = fs.Int("auth", 3, "number of authoritative nameservers")
		poolSize    = fs.Int("pool", 8, "benign addresses in the pool RRset")
		maxAnswers  = fs.Int("max-answers", 4, "answers per query (pool.ntp.org style)")
		ttl         = fs.Int("ttl", 150, "TTL on the pool records (seconds; short TTLs drive fast refresh cycles)")
		extraNames  = fs.Int("extra-domains", 0, "additional pool-<i> names sharing the benign RRset (zipfian load-test targets)")
		adversary   = fs.String("adversary", "none", "none | resolver | onpath | offpath")
		compromised = fs.String("compromised", "", "comma-separated compromised resolver indices")
		offPathProb = fs.Float64("offpath-prob", 0.5, "off-path per-query success probability")
		payload     = fs.String("payload", "replace", "replace | inflate | empty")
		caOut       = fs.String("ca-out", "", "write the testbed CA certificate (PEM) to this file")
		epOut       = fs.String("endpoints-out", "", "write the DoH endpoint URLs (one per line) to this file, for scripting")
	)
	// Chaos flags come from the shared registry so they spell exactly like
	// dohpoold's: -chaos-payload selects a compromised-resolver adversary
	// with that payload, -chaos-resolvers the compromised subset, and
	// -chaos-prob < 1 switches to the off-path (probabilistic) model. The
	// -net-chaos-* group injects network faults on the resolver →
	// authoritative upstream path.
	chaos := cliflags.RegisterChaos(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *chaos.Payload != "" {
		*payload = *chaos.Payload
		if *chaos.Prob < 1 && *chaos.Prob > 0 {
			*adversary = "offpath"
			*offPathProb = *chaos.Prob
		} else {
			*adversary = "resolver"
		}
		if *compromised == "" {
			*compromised = *chaos.Resolvers
			if *compromised == "" {
				*compromised = "0"
			}
		}
	}

	cfg := testbed.Config{
		Resolvers:        *resolvers,
		AuthServers:      *authServers,
		PoolSize:         *poolSize,
		MaxAnswers:       *maxAnswers,
		TTL:              uint32(*ttl),
		OffPathProb:      *offPathProb,
		ExtraPoolDomains: *extraNames,
		NetChaos: attack.NetChaosOptions{
			DropProb:       *chaos.NetDrop,
			Delay:          *chaos.NetDelay,
			Jitter:         *chaos.NetJitter,
			PartitionEvery: *chaos.NetPartitionEvery,
			PartitionFor:   *chaos.NetPartitionFor,
			ChurnEvery:     *chaos.NetChurnEvery,
			ChurnDowntime:  *chaos.NetChurnDowntime,
			Seed:           *chaos.Seed,
		},
	}
	if *chaos.NetResolvers != "" {
		// The testbed's fault seam is the shared resolver → authoritative
		// path, not individual resolvers; per-resolver scoping lives in
		// dohpoold's -net-chaos-resolvers.
		fmt.Fprintln(os.Stderr, "warning: -net-chaos-resolvers has no effect on the testbed (faults apply to the shared upstream path)")
	}
	if cfg.NetChaos.Active() {
		fmt.Fprintln(os.Stderr, "warning: NET CHAOS ACTIVE: network faults are injected between the resolvers and the authoritative servers")
	}
	switch *adversary {
	case "none":
		cfg.Adversary = testbed.AdversaryNone
	case "resolver":
		cfg.Adversary = testbed.AdversaryResolver
	case "onpath":
		cfg.Adversary = testbed.AdversaryOnPath
	case "offpath":
		cfg.Adversary = testbed.AdversaryOffPath
	default:
		return fmt.Errorf("unknown adversary %q", *adversary)
	}
	var err error
	if cfg.Payload, err = attack.ParsePayload(*payload); err != nil {
		return err
	}
	if *compromised != "" {
		idx, err := cliflags.ParseIndexList(*compromised)
		if err != nil {
			return fmt.Errorf("bad -compromised: %w", err)
		}
		cfg.Plan = attack.FixedPlan(*resolvers, idx...)
	}

	tb, err := testbed.Start(cfg)
	if err != nil {
		return err
	}
	defer tb.Close()

	if *caOut != "" {
		if err := os.WriteFile(*caOut, tb.CA.CertPEM(), 0o644); err != nil {
			return fmt.Errorf("write -ca-out: %w", err)
		}
		fmt.Printf("testbed: CA certificate written to %s (pass via dohquery -ca)\n", *caOut)
	}
	if *epOut != "" {
		var sb strings.Builder
		for _, ep := range tb.Endpoints {
			sb.WriteString(ep.URL)
			sb.WriteByte('\n')
		}
		if err := os.WriteFile(*epOut, []byte(sb.String()), 0o644); err != nil {
			return fmt.Errorf("write -endpoints-out: %w", err)
		}
		fmt.Printf("testbed: endpoint URLs written to %s\n", *epOut)
	}
	fmt.Printf("testbed: pool domain %s (%d addresses, %d per answer)\n",
		tb.Domain(), *poolSize, *maxAnswers)
	if *extraNames > 0 {
		fmt.Printf("testbed: plus %d extra pool domains (pool-0 … pool-%d)\n", *extraNames, *extraNames-1)
	}
	for i, srv := range tb.Auth {
		fmt.Printf("  authoritative[%d]  %s (udp+tcp)\n", i, srv.Addr())
	}
	for i, ep := range tb.Endpoints {
		marker := ""
		if cfg.Plan.Compromised(i) {
			marker = "  [" + *adversary + " adversary]"
		}
		fmt.Printf("  doh resolver[%d]   %s%s\n", i, ep.URL, marker)
	}
	fmt.Println("testbed: running — interrupt to stop")

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	return nil
}
