// Command dohpoold is the deployable form of the paper's proposal: a
// standard-compatible DNS resolver daemon whose every answer is a secure
// server pool generated through distributed DoH resolvers (Algorithm 1).
// Legacy applications point their stub resolver at it and need no changes.
//
// The daemon runs the long-lived consensus engine: pools are cached until
// their upstream TTL expires, concurrent queries coalesce into one
// resolver fan-out, straggling resolvers are hedged and persistently
// failing ones are circuit-broken. UDP and TCP (RFC 7766) are served on
// the same port.
//
// Usage:
//
//	dohpoold -listen 127.0.0.1:5353 -admin 127.0.0.1:8053 \
//	  -resolver https://dns.google/dns-query \
//	  -resolver https://cloudflare-dns.com/dns-query \
//	  -resolver https://dns.quad9.net/dns-query
//
// While running, the admin server answers `curl :8053/metrics`
// (Prometheus exposition for engine lookups, cache effectiveness,
// resolver health and frontend traffic), `/healthz` (breaker-aware
// readiness) and `/poolz` (cached pools with TTLs).
//
// Flags:
//
//	-listen             UDP+TCP address for the plain-DNS front-end
//	-doh-addr           serve DNS over HTTPS (RFC 8484) on this address
//	-dot-addr           serve DNS over TLS (RFC 7858) on this address
//	-tls-cert/-tls-key  PEM certificate chain and key for the encrypted
//	                    listeners
//	-tls-self-signed    generate an ephemeral self-signed identity
//	                    instead (dev/testbed mode)
//	-tls-ca-out         write the self-signed CA certificate (PEM) to
//	                    this file, for clients to trust
//	-resolver           DoH endpoint URL (repeat ≥ 3 times)
//	-admin              observability HTTP address ("" disables)
//	-stats-on-exit      print cache/health stats at shutdown (the
//	                    pre-admin-server behaviour)
//	-quorum             resolvers that must answer (0 = all)
//	-majority           answer only majority-confirmed addresses
//	-timeout            per-resolver query timeout
//	-cache-size         consensus cache capacity (-1 disables caching)
//	-cache-shards       cache lock shards (0 = sized from GOMAXPROCS)
//	-max-stale          serve expired pools this long while refreshing
//	-stale-while-revalidate
//	                    canonical name for -max-stale
//	-refresh-ahead      regenerate cached pools in the background at this
//	                    fraction of TTL (e.g. 0.8; 0 = miss-driven only)
//	-refresh-min-hits   popularity threshold for refresh-ahead
//	-trust-window       pool generations feeding each resolver's trust
//	                    score (0 = default 16, -1 = disable scoring)
//	-trust-min-score    quarantine resolvers scoring below this (0 =
//	                    observe only; 0.5 recommended)
//	-chaos-payload      interpose an adversary at the engine's transport
//	                    seam: replace | inflate | empty ("" = off)
//	-chaos-resolvers    comma-separated resolver indices the chaos
//	                    adversary compromises (default: 0)
//	-chaos-prob         per-exchange forge probability (default 1)
//	-version            print module version / VCS revision and exit
//	-hedge-delay        fixed straggler hedge delay (0 = adaptive)
//	-no-hedge           disable straggler hedging
//	-breaker-threshold  consecutive failures that open a resolver's breaker
//	-breaker-cooldown   how long an open breaker rejects attempts
//	-udp-workers        bounded UDP worker pool size (0 = from GOMAXPROCS)
//	-udp-batch          UDP datagrams per syscall (recvmmsg/sendmmsg on
//	                    Linux; 1 = portable one-per-syscall path)
//	-max-tcp-conns      concurrent TCP connection bound
package main

import (
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strconv"
	"strings"
	"syscall"
	"time"

	"dohpool"
	"dohpool/internal/testpki"
)

// resolverList collects repeated -resolver flags.
type resolverList []string

func (r *resolverList) String() string { return fmt.Sprint(*r) }

func (r *resolverList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dohpoold:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dohpoold", flag.ContinueOnError)
	var resolvers resolverList
	var (
		listen      = fs.String("listen", "127.0.0.1:5353", "UDP+TCP listen address for the DNS front-end")
		dohAddr     = fs.String("doh-addr", "", "additionally serve DNS over HTTPS (RFC 8484) on this address (\"\" disables)")
		dotAddr     = fs.String("dot-addr", "", "additionally serve DNS over TLS (RFC 7858) on this address (\"\" disables)")
		tlsCert     = fs.String("tls-cert", "", "PEM certificate chain for the encrypted listeners")
		tlsKey      = fs.String("tls-key", "", "PEM private key for the encrypted listeners")
		tlsSelfSign = fs.Bool("tls-self-signed", false, "DEV MODE: generate an ephemeral self-signed serving identity instead of -tls-cert/-tls-key")
		tlsCAOut    = fs.String("tls-ca-out", "", "write the -tls-self-signed CA certificate (PEM) to this file so clients can trust it")
		adminAddr   = fs.String("admin", "127.0.0.1:8053", "observability HTTP listen address for /metrics, /healthz, /poolz (\"\" disables)")
		statsOnExit = fs.Bool("stats-on-exit", false, "print cache and resolver-health stats at shutdown")

		quorum   = fs.Int("quorum", 0, "resolvers that must answer (0 = all)")
		majority = fs.Bool("majority", false, "answer only majority-confirmed addresses")
		timeout  = fs.Duration("timeout", 4*time.Second, "per-resolver query timeout")

		cacheSize        = fs.Int("cache-size", 0, "consensus cache capacity in entries (0 = default, -1 = disable)")
		cacheShards      = fs.Int("cache-shards", 0, "consensus cache lock shards, rounded up to a power of two (0 = from GOMAXPROCS)")
		maxStale         = fs.Duration("max-stale", 0, "serve expired pools up to this long past TTL while refreshing")
		swr              = fs.Duration("stale-while-revalidate", 0, "canonical name for -max-stale (wins when both are set)")
		refreshAhead     = fs.Float64("refresh-ahead", 0, "regenerate cached pools in the background at this fraction of TTL, e.g. 0.8 (0 = disabled)")
		refreshMinHits   = fs.Uint64("refresh-min-hits", 1, "minimum hits since the last refresh before a pool stays on refresh-ahead (0 uses the default of 1)")
		trustWindow      = fs.Int("trust-window", 0, "pool generations feeding each resolver's trust score (0 = default 16, negative = disable)")
		trustMinScore    = fs.Float64("trust-min-score", 0, "quarantine resolvers whose trust score falls below this (0 = observe only; 0.5 recommended)")
		chaosPayload     = fs.String("chaos-payload", "", "CHAOS MODE: forge targeted resolvers' answers with this payload: replace | inflate | empty (\"\" = off)")
		chaosResolvers   = fs.String("chaos-resolvers", "", "comma-separated resolver indices the chaos adversary compromises (default \"0\")")
		chaosProb        = fs.Float64("chaos-prob", 1, "per-exchange probability a targeted exchange is forged")
		hedgeDelay       = fs.Duration("hedge-delay", 0, "fixed straggler hedge delay (0 = adaptive from EWMA RTT)")
		noHedge          = fs.Bool("no-hedge", false, "disable straggler hedging")
		breakerThreshold = fs.Int("breaker-threshold", 0, "consecutive failures opening a resolver's circuit breaker (0 = default, -1 = disable)")
		breakerCooldown  = fs.Duration("breaker-cooldown", 0, "how long an open breaker rejects attempts (0 = default)")
		udpWorkers       = fs.Int("udp-workers", 0, "UDP worker pool size (0 = sized from GOMAXPROCS)")
		udpBatch         = fs.Int("udp-batch", 0, "UDP datagrams moved per syscall via recvmmsg/sendmmsg on Linux (0 = default 16, 1 = portable path)")
		maxTCPConns      = fs.Int("max-tcp-conns", 0, "max concurrently served TCP connections (0 = default)")
	)
	caFile := fs.String("ca", "", "PEM file with additional trusted CA (testbed interop)")
	showVersion := fs.Bool("version", false, "print the build's module version and VCS revision, then exit")
	fs.Var(&resolvers, "resolver", "DoH endpoint URL (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version, revision := dohpool.BuildInfo()
		fmt.Printf("dohpoold %s (revision %s)\n", version, revision)
		return nil
	}
	if len(resolvers) == 0 {
		return fmt.Errorf("at least one -resolver is required (the security analysis wants >= 3)")
	}
	adminExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "admin" {
			adminExplicit = true
		}
	})
	if len(resolvers) < 3 {
		fmt.Fprintf(os.Stderr, "warning: only %d resolver(s); the paper's analysis assumes >= 3\n", len(resolvers))
	}

	var chaosIdx []int
	if *chaosResolvers != "" {
		for _, s := range strings.Split(*chaosResolvers, ",") {
			i, err := strconv.Atoi(strings.TrimSpace(s))
			if err != nil {
				return fmt.Errorf("bad -chaos-resolvers entry %q: %v", s, err)
			}
			chaosIdx = append(chaosIdx, i)
		}
	}
	if *chaosPayload != "" {
		fmt.Fprintf(os.Stderr, "warning: CHAOS MODE ACTIVE (-chaos-payload=%s): forged answers are injected below the consensus engine; never run this on a production resolver path\n", *chaosPayload)
	}
	if (*tlsSelfSign || *tlsCert != "" || *tlsKey != "" || *tlsCAOut != "") && *dohAddr == "" && *dotAddr == "" {
		// Without an encrypted listener the TLS identity flags would be
		// silently ignored — surface the real missing input instead.
		return fmt.Errorf("TLS serving flags (-tls-self-signed/-tls-cert/-tls-key/-tls-ca-out) require -doh-addr or -dot-addr")
	}

	cfg := dohpool.Config{
		DoHAddr:              *dohAddr,
		DoTAddr:              *dotAddr,
		TLSCert:              *tlsCert,
		TLSKey:               *tlsKey,
		TLSSelfSigned:        *tlsSelfSign,
		MinResolvers:         *quorum,
		WithMajority:         *majority,
		QueryTimeout:         *timeout,
		CacheSize:            *cacheSize,
		CacheShards:          *cacheShards,
		MaxStale:             *maxStale,
		StaleWhileRevalidate: *swr,
		RefreshAhead:         *refreshAhead,
		RefreshMinHits:       *refreshMinHits,
		TrustWindow:          *trustWindow,
		TrustMinScore:        *trustMinScore,
		ChaosPayload:         *chaosPayload,
		ChaosResolvers:       chaosIdx,
		ChaosProb:            *chaosProb,
		HedgeDelay:           *hedgeDelay,
		DisableHedging:       *noHedge,
		BreakerThreshold:     *breakerThreshold,
		BreakerCooldown:      *breakerCooldown,
		UDPWorkers:           *udpWorkers,
		UDPBatch:             *udpBatch,
		MaxTCPConns:          *maxTCPConns,
		AdminAddr:            *adminAddr,
	}
	if *caFile != "" {
		pemBytes, err := os.ReadFile(*caFile)
		if err != nil {
			return fmt.Errorf("read -ca file: %w", err)
		}
		pool, err := testpki.PoolFromPEM(pemBytes)
		if err != nil {
			return fmt.Errorf("parse -ca file: %w", err)
		}
		cfg.TLSConfig = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	}
	for i, url := range resolvers {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{
			Name: fmt.Sprintf("resolver-%d", i),
			URL:  url,
		})
	}
	client, err := dohpool.New(cfg)
	if errors.Is(err, dohpool.ErrAdminListen) && !adminExplicit {
		// The admin server is on by default; an instance that worked
		// before the default existed (or a second instance on the same
		// host) must not be broken by a port conflict it never asked
		// about. Only an explicit -admin failure is fatal.
		fmt.Fprintf(os.Stderr, "warning: default admin address %s unavailable (%v); observability disabled — pass -admin explicitly to make this fatal\n", cfg.AdminAddr, err)
		cfg.AdminAddr = ""
		client, err = dohpool.New(cfg)
	}
	if err != nil {
		return err
	}

	if *tlsCAOut != "" {
		caPEM := client.ServingCAPEM()
		if caPEM == nil {
			_ = client.Close()
			return fmt.Errorf("-tls-ca-out requires -tls-self-signed (there is no generated CA to write)")
		}
		if err := os.WriteFile(*tlsCAOut, caPEM, 0o644); err != nil {
			_ = client.Close()
			return fmt.Errorf("write -tls-ca-out: %w", err)
		}
		fmt.Printf("dohpoold: self-signed CA certificate written to %s (pass via dohquery -ca)\n", *tlsCAOut)
	}

	frontend, err := client.Serve(*listen)
	if err != nil {
		_ = client.Close()
		return err
	}
	fmt.Printf("dohpoold: serving consensus-backed DNS (UDP+TCP) on %s via %d DoH resolvers\n",
		frontend.Addr(), client.ResolverCount())
	if addr := frontend.DoHAddr(); addr != "" {
		fmt.Printf("dohpoold: serving DNS over HTTPS (RFC 8484) on https://%s/dns-query\n", addr)
	}
	if addr := frontend.DoTAddr(); addr != "" {
		fmt.Printf("dohpoold: serving DNS over TLS (RFC 7858) on %s\n", addr)
	}
	if addr := client.AdminAddr(); addr != "" {
		fmt.Printf("dohpoold: observability on http://%s (/metrics /healthz /poolz)\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Ordered shutdown: stop the frontend first — its Close waits for
	// every in-flight query to be answered — so the engine (and admin
	// server) those queries depend on only goes away once they are
	// flushed.
	_ = frontend.Close()
	if *statsOnExit {
		printStats(client, frontend)
	}
	return client.Close()
}

// printStats reports engine effectiveness at shutdown: served/failure
// counters, cache hit rate and per-resolver health.
func printStats(client *dohpool.Client, frontend *dohpool.Frontend) {
	fmt.Printf("dohpoold: shutting down after %d served queries (%d failures, %d shed)\n",
		frontend.Served(), frontend.Failures(), frontend.Dropped())
	cs := client.CacheStats()
	fmt.Printf("dohpoold: cache %d hits / %d misses (%.1f%% hit rate), %d evictions, %d expirations\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Expirations)
	trust := make(map[string]dohpool.ResolverTrust)
	for _, t := range client.ResolverTrust() {
		trust[t.Resolver.URL] = t
	}
	for _, h := range client.ResolverHealth() {
		state := "ok"
		if h.CircuitOpen {
			state = "circuit-open"
		}
		trustCol := ""
		if t, ok := trust[h.Resolver.URL]; ok {
			trustCol = fmt.Sprintf(" trust=%.2f", t.Score)
			if t.Distrusted {
				trustCol += " (distrusted)"
			}
		}
		fmt.Printf("dohpoold: resolver %-12s rtt=%-10v ok=%-6d fail=%-4d hedges=%-4d %s%s\n",
			h.Resolver.Name, h.EWMARTT.Round(time.Microsecond), h.Successes, h.Failures, h.Hedges, state, trustCol)
	}
}
