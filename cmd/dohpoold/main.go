// Command dohpoold is the deployable form of the paper's proposal: a
// standard-compatible DNS resolver daemon whose every answer is a secure
// server pool generated through distributed DoH resolvers (Algorithm 1).
// Legacy applications point their stub resolver at it and need no changes.
//
// The daemon runs the long-lived consensus engine: pools are cached until
// their upstream TTL expires, concurrent queries coalesce into one
// resolver fan-out, straggling resolvers are hedged and persistently
// failing ones are circuit-broken. UDP and TCP (RFC 7766) are served on
// the same port.
//
// Usage:
//
//	dohpoold -listen 127.0.0.1:5353 -admin 127.0.0.1:8053 \
//	  -resolver https://dns.google/dns-query \
//	  -resolver https://cloudflare-dns.com/dns-query \
//	  -resolver https://dns.quad9.net/dns-query
//
// While running, the admin server answers `curl :8053/metrics`
// (Prometheus exposition for engine lookups, cache effectiveness,
// resolver health and frontend traffic), `/healthz` (breaker-aware
// readiness) and `/poolz` (cached pools with TTLs).
//
// Flags:
//
//	-listen             UDP+TCP address for the plain-DNS front-end
//	-doh-addr           serve DNS over HTTPS (RFC 8484) on this address
//	-dot-addr           serve DNS over TLS (RFC 7858) on this address
//	-tls-cert/-tls-key  PEM certificate chain and key for the encrypted
//	                    listeners
//	-tls-self-signed    generate an ephemeral self-signed identity
//	                    instead (dev/testbed mode)
//	-tls-ca-out         write the self-signed CA certificate (PEM) to
//	                    this file, for clients to trust
//	-resolver           DoH endpoint URL (repeat ≥ 3 times)
//	-admin              observability HTTP address ("" disables)
//	-stats-on-exit      print cache/health stats at shutdown (the
//	                    pre-admin-server behaviour)
//	-quorum             resolvers that must answer (0 = all)
//	-majority           answer only majority-confirmed addresses
//	-timeout            per-resolver query timeout
//	-cache-size         consensus cache capacity (-1 disables caching)
//	-cache-shards       cache lock shards (0 = sized from GOMAXPROCS)
//	-max-stale          serve expired pools this long while refreshing
//	-stale-while-revalidate
//	                    canonical name for -max-stale
//	-refresh-ahead      regenerate cached pools in the background at this
//	                    fraction of TTL (e.g. 0.8; 0 = miss-driven only)
//	-refresh-min-hits   popularity threshold for refresh-ahead
//	-trust-window       pool generations feeding each resolver's trust
//	                    score (0 = default 16, -1 = disable scoring)
//	-trust-min-score    quarantine resolvers scoring below this (0 =
//	                    observe only; 0.5 recommended)
//	-chaos-payload      interpose an adversary at the engine's transport
//	                    seam: replace | inflate | empty ("" = off)
//	-chaos-resolvers    comma-separated resolver indices the chaos
//	                    adversary compromises (default: 0)
//	-chaos-prob         per-exchange forge probability (default 1)
//	-chaos-seed         seed for all chaos randomness (0 uses seed 1)
//	-net-chaos-*        network-fault layer at the same seam: -net-chaos-drop,
//	                    -net-chaos-delay/-net-chaos-jitter,
//	                    -net-chaos-partition-every/-net-chaos-partition-for,
//	                    -net-chaos-churn-every/-net-chaos-churn-downtime,
//	                    -net-chaos-resolvers (default: all)
//	-version            print module version / VCS revision and exit
//	-hedge-delay        fixed straggler hedge delay (0 = adaptive)
//	-no-hedge           disable straggler hedging
//	-breaker-threshold  consecutive failures that open a resolver's breaker
//	-breaker-cooldown   how long an open breaker rejects attempts
//	-udp-workers        bounded UDP worker pool size (0 = from GOMAXPROCS)
//	-udp-batch          UDP datagrams per syscall (recvmmsg/sendmmsg on
//	                    Linux; 1 = portable one-per-syscall path)
//	-udp-sockets        SO_REUSEPORT UDP sockets sharing the serving port
//	                    (Linux; 0 = from NumCPU, 1 = single socket)
//	-max-tcp-conns      concurrent TCP connection bound
package main

import (
	"crypto/tls"
	"errors"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dohpool"
	"dohpool/internal/cliflags"
	"dohpool/internal/testpki"
)

// resolverList collects repeated -resolver flags.
type resolverList []string

func (r *resolverList) String() string { return fmt.Sprint(*r) }

func (r *resolverList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dohpoold:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dohpoold", flag.ContinueOnError)
	var resolvers resolverList
	// Library knobs come from the shared registry so every binary spells
	// them identically; only daemon-local concerns are declared here.
	groups := cliflags.RegisterAll(fs, cliflags.ServeOptions{AdminDefault: "127.0.0.1:8053"})
	var (
		listen      = fs.String("listen", "127.0.0.1:5353", "UDP+TCP listen address for the DNS front-end")
		tlsCAOut    = fs.String("tls-ca-out", "", "write the -tls-self-signed CA certificate (PEM) to this file so clients can trust it")
		statsOnExit = fs.Bool("stats-on-exit", false, "print cache and resolver-health stats at shutdown")
	)
	caFile := fs.String("ca", "", "PEM file with additional trusted CA (testbed interop)")
	showVersion := fs.Bool("version", false, "print the build's module version and VCS revision, then exit")
	fs.Var(&resolvers, "resolver", "DoH endpoint URL (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *showVersion {
		version, revision := dohpool.BuildInfo()
		fmt.Printf("dohpoold %s (revision %s)\n", version, revision)
		return nil
	}
	if len(resolvers) == 0 {
		return fmt.Errorf("at least one -resolver is required (the security analysis wants >= 3)")
	}
	adminExplicit := false
	fs.Visit(func(f *flag.Flag) {
		if f.Name == "admin" {
			adminExplicit = true
		}
	})
	if len(resolvers) < 3 {
		fmt.Fprintf(os.Stderr, "warning: only %d resolver(s); the paper's analysis assumes >= 3\n", len(resolvers))
	}

	var cfg dohpool.Config
	if err := groups.Apply(&cfg); err != nil {
		return err
	}
	if cfg.Chaos.Payload != "" {
		fmt.Fprintf(os.Stderr, "warning: CHAOS MODE ACTIVE (-chaos-payload=%s): forged answers are injected below the consensus engine; never run this on a production resolver path\n", cfg.Chaos.Payload)
	}
	if cfg.Chaos.Net.Active() {
		fmt.Fprintln(os.Stderr, "warning: NET CHAOS ACTIVE: network faults (drop/delay/partition/churn) are injected on the resolver paths; never run this on a production resolver path")
	}
	if (cfg.Serve.TLSSelfSigned || cfg.Serve.TLSCert != "" || cfg.Serve.TLSKey != "" || *tlsCAOut != "") && cfg.Serve.DoHAddr == "" && cfg.Serve.DoTAddr == "" {
		// Without an encrypted listener the TLS identity flags would be
		// silently ignored — surface the real missing input instead.
		return fmt.Errorf("TLS serving flags (-tls-self-signed/-tls-cert/-tls-key/-tls-ca-out) require -doh-addr or -dot-addr")
	}
	if *caFile != "" {
		pemBytes, err := os.ReadFile(*caFile)
		if err != nil {
			return fmt.Errorf("read -ca file: %w", err)
		}
		pool, err := testpki.PoolFromPEM(pemBytes)
		if err != nil {
			return fmt.Errorf("parse -ca file: %w", err)
		}
		cfg.TLSConfig = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	}
	for i, url := range resolvers {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{
			Name: fmt.Sprintf("resolver-%d", i),
			URL:  url,
		})
	}
	client, err := dohpool.New(cfg)
	if errors.Is(err, dohpool.ErrAdminListen) && !adminExplicit {
		// The admin server is on by default; an instance that worked
		// before the default existed (or a second instance on the same
		// host) must not be broken by a port conflict it never asked
		// about. Only an explicit -admin failure is fatal.
		fmt.Fprintf(os.Stderr, "warning: default admin address %s unavailable (%v); observability disabled — pass -admin explicitly to make this fatal\n", cfg.Serve.AdminAddr, err)
		cfg.Serve.AdminAddr = ""
		client, err = dohpool.New(cfg)
	}
	if err != nil {
		return err
	}

	if *tlsCAOut != "" {
		caPEM := client.ServingCAPEM()
		if caPEM == nil {
			_ = client.Close()
			return fmt.Errorf("-tls-ca-out requires -tls-self-signed (there is no generated CA to write)")
		}
		if err := os.WriteFile(*tlsCAOut, caPEM, 0o644); err != nil {
			_ = client.Close()
			return fmt.Errorf("write -tls-ca-out: %w", err)
		}
		fmt.Printf("dohpoold: self-signed CA certificate written to %s (pass via dohquery -ca)\n", *tlsCAOut)
	}

	frontend, err := client.Serve(*listen)
	if err != nil {
		_ = client.Close()
		return err
	}
	fmt.Printf("dohpoold: serving consensus-backed DNS (UDP+TCP) on %s via %d DoH resolvers\n",
		frontend.Addr(), client.ResolverCount())
	if addr := frontend.DoHAddr(); addr != "" {
		fmt.Printf("dohpoold: serving DNS over HTTPS (RFC 8484) on https://%s/dns-query\n", addr)
	}
	if addr := frontend.DoTAddr(); addr != "" {
		fmt.Printf("dohpoold: serving DNS over TLS (RFC 7858) on %s\n", addr)
	}
	if addr := client.AdminAddr(); addr != "" {
		fmt.Printf("dohpoold: observability on http://%s (/metrics /healthz /poolz)\n", addr)
	}

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig

	// Ordered shutdown: stop the frontend first — its Close waits for
	// every in-flight query to be answered — so the engine (and admin
	// server) those queries depend on only goes away once they are
	// flushed.
	_ = frontend.Close()
	if *statsOnExit {
		printStats(client, frontend)
	}
	return client.Close()
}

// printStats reports engine effectiveness at shutdown: served/failure
// counters, cache hit rate and per-resolver health.
func printStats(client *dohpool.Client, frontend *dohpool.Frontend) {
	fmt.Printf("dohpoold: shutting down after %d served queries (%d failures, %d shed)\n",
		frontend.Served(), frontend.Failures(), frontend.Dropped())
	cs := client.CacheStats()
	fmt.Printf("dohpoold: cache %d hits / %d misses (%.1f%% hit rate), %d evictions, %d expirations\n",
		cs.Hits, cs.Misses, 100*cs.HitRate(), cs.Evictions, cs.Expirations)
	trust := make(map[string]dohpool.ResolverTrust)
	for _, t := range client.ResolverTrust() {
		trust[t.Resolver.URL] = t
	}
	for _, h := range client.ResolverHealth() {
		state := "ok"
		if h.CircuitOpen {
			state = "circuit-open"
		}
		trustCol := ""
		if t, ok := trust[h.Resolver.URL]; ok {
			trustCol = fmt.Sprintf(" trust=%.2f", t.Score)
			if t.Distrusted {
				trustCol += " (distrusted)"
			}
		}
		fmt.Printf("dohpoold: resolver %-12s rtt=%-10v ok=%-6d fail=%-4d hedges=%-4d %s%s\n",
			h.Resolver.Name, h.EWMARTT.Round(time.Microsecond), h.Successes, h.Failures, h.Hedges, state, trustCol)
	}
}
