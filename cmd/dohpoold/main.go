// Command dohpoold is the deployable form of the paper's proposal: a
// standard-compatible DNS resolver daemon whose every answer is a secure
// server pool generated through distributed DoH resolvers (Algorithm 1).
// Legacy applications point their stub resolver at it and need no changes.
//
// Usage:
//
//	dohpoold -listen 127.0.0.1:5353 \
//	  -resolver https://dns.google/dns-query \
//	  -resolver https://cloudflare-dns.com/dns-query \
//	  -resolver https://dns.quad9.net/dns-query
//
// Flags:
//
//	-listen     UDP address for the plain-DNS front-end
//	-resolver   DoH endpoint URL (repeat ≥ 3 times)
//	-quorum     resolvers that must answer (0 = all)
//	-majority   answer only majority-confirmed addresses
//	-timeout    per-resolver query timeout
package main

import (
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"

	"dohpool"
	"dohpool/internal/testpki"
)

// resolverList collects repeated -resolver flags.
type resolverList []string

func (r *resolverList) String() string { return fmt.Sprint(*r) }

func (r *resolverList) Set(v string) error {
	*r = append(*r, v)
	return nil
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "dohpoold:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("dohpoold", flag.ContinueOnError)
	var resolvers resolverList
	var (
		listen   = fs.String("listen", "127.0.0.1:5353", "UDP listen address for the DNS front-end")
		quorum   = fs.Int("quorum", 0, "resolvers that must answer (0 = all)")
		majority = fs.Bool("majority", false, "answer only majority-confirmed addresses")
		timeout  = fs.Duration("timeout", 4*time.Second, "per-resolver query timeout")
	)
	caFile := fs.String("ca", "", "PEM file with additional trusted CA (testbed interop)")
	fs.Var(&resolvers, "resolver", "DoH endpoint URL (repeatable)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(resolvers) == 0 {
		return fmt.Errorf("at least one -resolver is required (the security analysis wants >= 3)")
	}
	if len(resolvers) < 3 {
		fmt.Fprintf(os.Stderr, "warning: only %d resolver(s); the paper's analysis assumes >= 3\n", len(resolvers))
	}

	cfg := dohpool.Config{
		MinResolvers: *quorum,
		WithMajority: *majority,
		QueryTimeout: *timeout,
	}
	if *caFile != "" {
		pemBytes, err := os.ReadFile(*caFile)
		if err != nil {
			return fmt.Errorf("read -ca file: %w", err)
		}
		pool, err := testpki.PoolFromPEM(pemBytes)
		if err != nil {
			return fmt.Errorf("parse -ca file: %w", err)
		}
		cfg.TLSConfig = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	}
	for i, url := range resolvers {
		cfg.Resolvers = append(cfg.Resolvers, dohpool.Resolver{
			Name: fmt.Sprintf("resolver-%d", i),
			URL:  url,
		})
	}
	client, err := dohpool.New(cfg)
	if err != nil {
		return err
	}

	frontend, err := client.Serve(*listen)
	if err != nil {
		return err
	}
	defer frontend.Close()
	fmt.Printf("dohpoold: serving consensus-backed DNS on %s via %d DoH resolvers\n",
		frontend.Addr(), client.ResolverCount())

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Printf("dohpoold: shutting down after %d served queries\n", frontend.Served())
	return nil
}
