package main

import (
	"strings"
	"testing"
)

func TestRunRequiresResolvers(t *testing.T) {
	err := run(nil)
	if err == nil {
		t.Fatal("run without resolvers succeeded")
	}
	if !strings.Contains(err.Error(), "-resolver") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsUnknownFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsBadEngineFlagValues(t *testing.T) {
	// Non-duration value for a duration flag must fail at parse time.
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-max-stale", "bogus"}); err == nil {
		t.Fatal("bad -max-stale accepted")
	}
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-hedge-delay", "nope"}); err == nil {
		t.Fatal("bad -hedge-delay accepted")
	}
}

func TestResolverListAccumulates(t *testing.T) {
	var rl resolverList
	for _, u := range []string{"u1", "u2", "u3"} {
		if err := rl.Set(u); err != nil {
			t.Fatal(err)
		}
	}
	if len(rl) != 3 {
		t.Fatalf("len = %d", len(rl))
	}
}
