package main

import (
	"net"
	"strings"
	"testing"
)

func TestRunRequiresResolvers(t *testing.T) {
	err := run(nil)
	if err == nil {
		t.Fatal("run without resolvers succeeded")
	}
	if !strings.Contains(err.Error(), "-resolver") {
		t.Fatalf("err = %v", err)
	}
}

func TestRunRejectsUnknownFlags(t *testing.T) {
	if err := run([]string{"-no-such-flag"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunRejectsBadEngineFlagValues(t *testing.T) {
	// Non-duration value for a duration flag must fail at parse time.
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-max-stale", "bogus"}); err == nil {
		t.Fatal("bad -max-stale accepted")
	}
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-hedge-delay", "nope"}); err == nil {
		t.Fatal("bad -hedge-delay accepted")
	}
}

func TestRunRejectsUnusableAdminAddr(t *testing.T) {
	// An explicitly requested -admin address that cannot be bound must
	// surface as a startup error, not a silently missing observability
	// server. Occupy a port to guarantee the bind fails.
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	err = run([]string{"-resolver", "https://r.test/dns-query", "-admin", ln.Addr().String()})
	if err == nil {
		t.Fatal("occupied -admin address accepted")
	}
	if !strings.Contains(err.Error(), "admin listen") {
		t.Fatalf("err = %v", err)
	}
}

func TestVersionFlagExitsBeforeResolverValidation(t *testing.T) {
	// -version must print and exit cleanly even without any -resolver,
	// like --help: it is a build-identity query, not a serving run.
	if err := run([]string{"-version"}); err != nil {
		t.Fatalf("run(-version) = %v", err)
	}
}

func TestRunRejectsBadRefreshFlags(t *testing.T) {
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-refresh-ahead", "bogus"}); err == nil {
		t.Fatal("bad -refresh-ahead accepted")
	}
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-stale-while-revalidate", "nope"}); err == nil {
		t.Fatal("bad -stale-while-revalidate accepted")
	}
	// An out-of-range fraction must be rejected by the engine at startup.
	if err := run([]string{"-resolver", "https://r.test/dns-query", "-refresh-ahead", "1.5", "-admin", ""}); err == nil {
		t.Fatal("-refresh-ahead 1.5 accepted")
	}
}

func TestRunRejectsEncryptedListenersWithoutIdentity(t *testing.T) {
	// -doh-addr / -dot-addr without -tls-cert/-tls-key or
	// -tls-self-signed must fail at startup, not serve unauthenticated.
	err := run([]string{"-resolver", "https://r.test/dns-query", "-admin", "",
		"-doh-addr", "127.0.0.1:0"})
	if err == nil || !strings.Contains(err.Error(), "TLS") {
		t.Fatalf("err = %v, want TLS identity requirement", err)
	}
	err = run([]string{"-resolver", "https://r.test/dns-query", "-admin", "",
		"-dot-addr", "127.0.0.1:0", "-tls-cert", "/only/half/of/it.pem"})
	if err == nil {
		t.Fatal("-tls-cert without -tls-key accepted")
	}
}

func TestRunRejectsConflictingTLSIdentitySources(t *testing.T) {
	// -tls-self-signed alongside -tls-cert/-tls-key must be rejected:
	// silently preferring one would serve a certificate the operator
	// did not choose.
	err := run([]string{"-resolver", "https://r.test/dns-query", "-admin", "",
		"-doh-addr", "127.0.0.1:0", "-tls-self-signed",
		"-tls-cert", "/some/cert.pem", "-tls-key", "/some/key.pem"})
	if err == nil || !strings.Contains(err.Error(), "conflicts") {
		t.Fatalf("err = %v, want identity-source conflict", err)
	}
}

func TestRunRejectsTLSFlagsWithoutEncryptedListener(t *testing.T) {
	// TLS identity flags without -doh-addr/-dot-addr would be silently
	// ignored; the daemon must name the real missing input instead.
	for _, args := range [][]string{
		{"-tls-self-signed"},
		{"-tls-ca-out", t.TempDir() + "/ca.pem"},
		{"-tls-cert", "/some/cert.pem", "-tls-key", "/some/key.pem"},
	} {
		err := run(append([]string{"-resolver", "https://r.test/dns-query", "-admin", ""}, args...))
		if err == nil || !strings.Contains(err.Error(), "-doh-addr or -dot-addr") {
			t.Fatalf("args %v: err = %v, want encrypted-listener requirement", args, err)
		}
	}
}

func TestResolverListAccumulates(t *testing.T) {
	var rl resolverList
	for _, u := range []string{"u1", "u2", "u3"} {
		if err := rl.Set(u); err != nil {
			t.Fatal(err)
		}
	}
	if len(rl) != 3 {
		t.Fatalf("len = %d", len(rl))
	}
}
