package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"strings"

	"dohpool/internal/loadgen"
)

// runSLO gates a loadgen BENCH_slo.json document: per-transport success
// rate and tail latency, optionally against a checked-in baseline run.
//
//	benchgate slo -current BENCH_slo.json -proto udp \
//	    -min-success 0.999 -max-p999-ms 50 \
//	    -baseline BENCH_slo_baseline.json -threshold 0.5 -slack-ms 5
//
// Absolute gates (-min-success, -max-p999-ms) always apply. When a
// baseline is given, the current ok-series p999 must additionally stay
// within baseline × (1+threshold) + slack. The additive slack exists
// because loopback percentiles sit in the tens of microseconds, where
// scheduler jitter alone is a large *fraction* but a tiny absolute
// cost; a pure ratio gate on a 40µs baseline would flap.
func runSLO(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate slo", flag.ContinueOnError)
	curPath := fs.String("current", "BENCH_slo.json", "current loadgen SLO document")
	basePath := fs.String("baseline", "", "baseline SLO document (\"\" = absolute gates only)")
	var protos benchList
	fs.Var(&protos, "proto", "gated transport (repeatable; default udp)")
	minSuccess := fs.Float64("min-success", 0.999, "minimum success rate per gated transport")
	maxP999 := fs.Float64("max-p999-ms", 0, "absolute ok-series p999 ceiling in ms (0 = no absolute latency gate)")
	threshold := fs.Float64("threshold", 0.5, "allowed fractional p999 regression over the baseline")
	slackMs := fs.Float64("slack-ms", 5, "absolute headroom added to the baseline p999 limit, in ms")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(protos) == 0 {
		protos = benchList{"udp"}
	}

	cur, err := loadSLO(*curPath)
	if err != nil {
		return err
	}
	var base *loadgen.Report
	if *basePath != "" {
		if base, err = loadSLO(*basePath); err != nil {
			return err
		}
	}

	// Context first, like compare: the full current table, so the CI log
	// always shows what the gate decided on.
	cur.WriteTable(stdout)

	var failures []string
	for _, proto := range protos {
		if err := gateSLO(cur, base, proto, *minSuccess, *maxP999, *threshold, *slackMs, stdout); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// gateSLO applies one transport's gates, reporting the limit actually
// enforced so a failure log is self-explanatory.
func gateSLO(cur, base *loadgen.Report, proto string, minSuccess, maxP999, threshold, slackMs float64, out io.Writer) error {
	succ, ok := cur.Success[proto]
	if !ok {
		return fmt.Errorf("current run has no %s transport — was it in -transports?", proto)
	}
	if succ.Sent == 0 {
		return fmt.Errorf("%s sent no queries", proto)
	}
	if succ.Rate < minSuccess {
		return fmt.Errorf("%s success rate %.4f below %.4f (%d/%d ok)",
			proto, succ.Rate, minSuccess, succ.OK, succ.Sent)
	}
	series, ok := okSeries(cur, proto)
	if !ok {
		return fmt.Errorf("%s has no ok latency series", proto)
	}

	limit := maxP999
	rule := fmt.Sprintf("absolute %.1fms", maxP999)
	if base != nil {
		bs, ok := okSeries(base, proto)
		if !ok {
			return fmt.Errorf("baseline has no %s ok series — refresh the baseline", proto)
		}
		baseLimit := bs.P999ms*(1+threshold) + slackMs
		if limit == 0 || baseLimit < limit {
			limit = baseLimit
			rule = fmt.Sprintf("baseline %.2fms × %.1f + %.1fms slack", bs.P999ms, 1+threshold, slackMs)
		}
	}
	if limit > 0 && series.P999ms > limit {
		return fmt.Errorf("%s ok p999 %.2fms exceeds %.2fms (%s)",
			proto, series.P999ms, limit, rule)
	}
	if limit > 0 {
		fmt.Fprintf(out, "gate ok: %s success %.4f >= %.4f, p999 %.2fms <= %.2fms (%s)\n",
			proto, succ.Rate, minSuccess, series.P999ms, limit, rule)
	} else {
		fmt.Fprintf(out, "gate ok: %s success %.4f >= %.4f (no latency gate)\n",
			proto, succ.Rate, minSuccess)
	}
	return nil
}

func okSeries(rep *loadgen.Report, proto string) (loadgen.Series, bool) {
	for _, s := range rep.Series {
		if s.Proto == proto && s.Outcome == loadgen.OutcomeOK {
			return s, true
		}
	}
	return loadgen.Series{}, false
}

func loadSLO(path string) (*loadgen.Report, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var rep loadgen.Report
	if err := json.Unmarshal(blob, &rep); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if rep.Meta.Schema != loadgen.SchemaSLO {
		return nil, fmt.Errorf("%s: schema %q is not %q — is this a loadgen -json document?",
			path, rep.Meta.Schema, loadgen.SchemaSLO)
	}
	return &rep, nil
}
