package main

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

const sampleOutput = `goos: linux
goarch: amd64
pkg: dohpool
cpu: Example CPU
BenchmarkEngineCachedLookup-8    	 2201102	       812.3 ns/op	     456 B/op	       2 allocs/op
BenchmarkEngineCachedLookup-8    	 2300000	       798.1 ns/op	     440 B/op	       2 allocs/op
BenchmarkEngineCachedLookup-8    	 2100000	       905.7 ns/op	     470 B/op	       2 allocs/op
BenchmarkEngineUncachedLookup-8  	    3021	    392817 ns/op
BenchmarkFrontendThroughput/udp-8	   50000	     21034 ns/op
PASS
ok  	dohpool	42.1s
`

func TestParseAggregatesMinimum(t *testing.T) {
	f, err := Parse(strings.NewReader(sampleOutput))
	if err != nil {
		t.Fatal(err)
	}
	got, ok := f.Benchmarks["BenchmarkEngineCachedLookup"]
	if !ok {
		t.Fatalf("benchmarks = %v", f.Benchmarks)
	}
	if got.NsPerOp != 798.1 {
		t.Errorf("ns/op = %v, want fastest sample 798.1", got.NsPerOp)
	}
	if got.BPerOp == nil || *got.BPerOp != 440 {
		t.Errorf("B/op = %v, want 440", got.BPerOp)
	}
	if got.AllocsPerOp == nil || *got.AllocsPerOp != 2 {
		t.Errorf("allocs/op = %v, want 2", got.AllocsPerOp)
	}
	if got.Samples != 3 {
		t.Errorf("samples = %d, want 3", got.Samples)
	}
	if _, ok := f.Benchmarks["BenchmarkFrontendThroughput/udp"]; !ok {
		t.Error("sub-benchmark name not parsed")
	}
	if un := f.Benchmarks["BenchmarkEngineUncachedLookup"]; un.NsPerOp != 392817 || un.BPerOp != nil || un.AllocsPerOp != nil {
		t.Errorf("uncached = %+v", un)
	}
}

// TestParseMeasuredZeroAllocs distinguishes a measured 0 allocs/op (the
// allocation-free fast path's contract, which must be recorded and
// gateable) from an un-instrumented benchmark (absent, ungated).
func TestParseMeasuredZeroAllocs(t *testing.T) {
	f, err := Parse(strings.NewReader(
		"BenchmarkFrontendThroughput/udp-8\t2000\t4763 ns/op\t2 B/op\t0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := f.Benchmarks["BenchmarkFrontendThroughput/udp"]
	if got.AllocsPerOp == nil || *got.AllocsPerOp != 0 {
		t.Fatalf("allocs/op = %v, want measured 0", got.AllocsPerOp)
	}
	blob, err := json.Marshal(f)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(blob), `"allocs_per_op":0`) {
		t.Fatalf("measured zero dropped from JSON: %s", blob)
	}
}

// TestParseMeasuredZeroBytesWinsCollapse: a measured 0 B/op sample must
// win the collapse against a noisier sibling (short fixed-iteration runs
// charge client setup to B/op), not be mistaken for "unmeasured".
func TestParseMeasuredZeroBytesWinsCollapse(t *testing.T) {
	f, err := Parse(strings.NewReader(
		"BenchmarkFrontendThroughput/udp_sockets-8\t2000\t3433 ns/op\t146 B/op\t0 allocs/op\n" +
			"BenchmarkFrontendThroughput/udp_sockets-8\t423874\t2832 ns/op\t0 B/op\t0 allocs/op\n"))
	if err != nil {
		t.Fatal(err)
	}
	got := f.Benchmarks["BenchmarkFrontendThroughput/udp_sockets"]
	if got.NsPerOp != 2832 {
		t.Errorf("ns/op = %v, want fastest sample 2832", got.NsPerOp)
	}
	if got.BPerOp == nil || *got.BPerOp != 0 {
		t.Errorf("B/op = %v, want measured 0", got.BPerOp)
	}
}

func TestGateWithinThreshold(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000}}}
	cur := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1250}}}
	if err := Gate(base, cur, "B", 0.30, &strings.Builder{}); err != nil {
		t.Fatalf("+25%% failed a 30%% gate: %v", err)
	}
}

func TestGateRegressionFails(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000}}}
	cur := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1311}}}
	err := Gate(base, cur, "B", 0.30, &strings.Builder{})
	if err == nil {
		t.Fatal("+31.1% passed a 30% gate")
	}
	if !strings.Contains(err.Error(), "regressed") {
		t.Fatalf("err = %v", err)
	}
}

func TestGateImprovementPasses(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000}}}
	cur := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 200}}}
	if err := Gate(base, cur, "B", 0.30, &strings.Builder{}); err != nil {
		t.Fatalf("5x speedup failed the gate: %v", err)
	}
}

func fp(v float64) *float64 { return &v }

func TestGateAllocBytesRegressionFails(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000, BPerOp: fp(1000)}}}
	cur := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000, BPerOp: fp(1500)}}}
	err := Gate(base, cur, "B", 0.30, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "B/op") {
		t.Fatalf("+50%% B/op passed a 30%% gate: %v", err)
	}
	// Within threshold+slack passes.
	cur.Benchmarks["B"] = Result{NsPerOp: 1000, BPerOp: fp(1400)}
	if err := Gate(base, cur, "B", 0.30, &strings.Builder{}); err != nil {
		t.Fatalf("+40%% of slack-covered B/op failed: %v", err)
	}
}

func TestGateAllocCountRegression(t *testing.T) {
	// A zero-alloc baseline tolerates only the absolute slack (amortised
	// client setup), not a real per-op allocation.
	base := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000, AllocsPerOp: fp(0)}}}
	cur := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1000, AllocsPerOp: fp(2)}}}
	err := Gate(base, cur, "B", 0.30, &strings.Builder{})
	if err == nil || !strings.Contains(err.Error(), "allocs/op") {
		t.Fatalf("0 -> 2 allocs/op passed: %v", err)
	}
	cur.Benchmarks["B"] = Result{NsPerOp: 1000, AllocsPerOp: fp(1)}
	if err := Gate(base, cur, "B", 0.30, &strings.Builder{}); err != nil {
		t.Fatalf("slack-covered 0 -> 1 allocs/op failed: %v", err)
	}
	// An un-instrumented current run is not gated on allocations.
	cur.Benchmarks["B"] = Result{NsPerOp: 1000}
	if err := Gate(base, cur, "B", 0.30, &strings.Builder{}); err != nil {
		t.Fatalf("absent allocs/op gated: %v", err)
	}
}

func TestGateMissingBenchmarkFails(t *testing.T) {
	base := &File{Benchmarks: map[string]Result{"other": {NsPerOp: 1}}}
	cur := &File{Benchmarks: map[string]Result{"B": {NsPerOp: 1}}}
	if err := Gate(base, cur, "B", 0.30, &strings.Builder{}); err == nil {
		t.Fatal("missing baseline entry passed")
	}
	if err := Gate(cur, base, "B", 0.30, &strings.Builder{}); err == nil {
		t.Fatal("missing current entry passed")
	}
}

func TestRunParseCompareRoundTrip(t *testing.T) {
	dir := t.TempDir()
	benchTxt := filepath.Join(dir, "bench.txt")
	ciJSON := filepath.Join(dir, "BENCH_ci.json")
	if err := os.WriteFile(benchTxt, []byte(sampleOutput), 0o644); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"parse", "-in", benchTxt, "-out", ciJSON}, nil, &strings.Builder{}); err != nil {
		t.Fatal(err)
	}
	// Same file as baseline and current: 0% change must pass.
	var out strings.Builder
	err := run([]string{"compare",
		"-baseline", ciJSON, "-current", ciJSON,
		"-bench", "BenchmarkEngineCachedLookup", "-threshold", "0.30"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(out.String(), "gate ok") {
		t.Fatalf("compare output:\n%s", out.String())
	}
	if !strings.Contains(out.String(), "benchmark delta table") {
		t.Fatalf("compare output missing delta table header:\n%s", out.String())
	}

	// Multiple -bench flags gate every named benchmark.
	out.Reset()
	err = run([]string{"compare",
		"-baseline", ciJSON, "-current", ciJSON,
		"-bench", "BenchmarkEngineCachedLookup",
		"-bench", "BenchmarkFrontendThroughput/udp",
		"-threshold", "0.30"}, nil, &out)
	if err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(out.String(), "gate ok"); got != 2 {
		t.Fatalf("gate ok count = %d, want 2:\n%s", got, out.String())
	}
}

func TestCompareReportsEveryGateViolation(t *testing.T) {
	dir := t.TempDir()
	basePath := filepath.Join(dir, "base.json")
	curPath := filepath.Join(dir, "cur.json")
	write := func(path string, engineNs, udpNs float64) {
		t.Helper()
		blob := fmt.Sprintf(`{"benchmarks":{"BenchmarkEngineCachedLookup":{"ns_per_op":%g,"samples":1},"BenchmarkFrontendThroughput/udp":{"ns_per_op":%g,"samples":1}}}`, engineNs, udpNs)
		if err := os.WriteFile(path, []byte(blob), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	write(basePath, 1000, 1000)
	write(curPath, 2000, 2000) // both +100%
	err := run([]string{"compare",
		"-baseline", basePath, "-current", curPath,
		"-bench", "BenchmarkEngineCachedLookup",
		"-bench", "BenchmarkFrontendThroughput/udp"}, nil, &strings.Builder{})
	if err == nil {
		t.Fatal("double regression passed the gate")
	}
	for _, want := range []string{"BenchmarkEngineCachedLookup", "BenchmarkFrontendThroughput/udp"} {
		if !strings.Contains(err.Error(), want) {
			t.Errorf("gate error omits %s: %v", want, err)
		}
	}
}

func TestRunParseEmptyInputFails(t *testing.T) {
	if err := run([]string{"parse"}, strings.NewReader("no benchmarks here\n"), &strings.Builder{}); err == nil {
		t.Fatal("empty benchmark output accepted")
	}
}

func TestRunUnknownSubcommand(t *testing.T) {
	if err := run([]string{"frobnicate"}, nil, &strings.Builder{}); err == nil {
		t.Fatal("unknown subcommand accepted")
	}
}
