// Command benchgate turns `go test -bench` output into a JSON artifact
// and enforces a benchmark-regression gate against a checked-in
// baseline. It is what makes CI's benchmark job a gate instead of a
// smoke test.
//
// Usage:
//
//	go test -run xxx -bench . -benchtime 3x -count 3 . | \
//	    benchgate parse -out BENCH_ci.json
//	benchgate compare -baseline BENCH_baseline.json -current BENCH_ci.json \
//	    -bench BenchmarkEngineCachedLookup \
//	    -bench BenchmarkFrontendThroughput/udp -threshold 0.30
//
// parse reads benchmark result lines (multiple -count runs of the same
// benchmark are collapsed to their fastest sample — the least-noise
// estimator for "how fast can this machine run it") and writes a JSON
// map of benchmark name to ns/op and B/op. compare prints a delta table
// for every benchmark both files know, then exits non-zero when any
// gated benchmark's ns/op in -current exceeds -baseline by more than
// -threshold (a fraction: 0.30 = +30%). -bench is repeatable: every
// named benchmark is gated under the same rule, and every violation is
// reported before the command fails.
//
// The slo subcommand gates a loadgen BENCH_slo.json document instead of
// microbenchmarks: per-transport success rate and ok-series p999, with
// an optional baseline comparison (see runSLO):
//
//	benchgate slo -current BENCH_slo.json -proto udp \
//	    -min-success 0.999 -max-p999-ms 50
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Result is one benchmark's aggregated measurement. BPerOp and
// AllocsPerOp are pointers because a measured zero — the whole point of
// an allocation-free serve path — must survive JSON round-trips and win
// the fastest-sample collapse, while an un-instrumented benchmark (no
// -benchmem/ReportAllocs) stays absent and ungated.
type Result struct {
	NsPerOp     float64  `json:"ns_per_op"`
	BPerOp      *float64 `json:"b_per_op,omitempty"`
	AllocsPerOp *float64 `json:"allocs_per_op,omitempty"`
	Samples     int      `json:"samples"`
}

// Machine identifies the runtime that produced a benchmark file.
// ns/op numbers are only comparable between runs on the same machine
// shape, so the gate's delta table leads with both sides' identity —
// a baseline regenerated on different hardware announces itself.
type Machine struct {
	GoVersion  string `json:"go_version"`
	GOOS       string `json:"goos"`
	GOARCH     string `json:"goarch"`
	NumCPU     int    `json:"num_cpu"`
	GOMAXPROCS int    `json:"gomaxprocs"`
}

// String renders the one-line form printed in compare headers.
func (m Machine) String() string {
	return fmt.Sprintf("%s %s/%s, %d cpu, gomaxprocs %d",
		m.GoVersion, m.GOOS, m.GOARCH, m.NumCPU, m.GOMAXPROCS)
}

// currentMachine snapshots the runtime parse executes on — the same
// machine that ran the piped `go test -bench`, since parse consumes
// its output in the same CI step.
func currentMachine() *Machine {
	return &Machine{
		GoVersion:  runtime.Version(),
		GOOS:       runtime.GOOS,
		GOARCH:     runtime.GOARCH,
		NumCPU:     runtime.NumCPU(),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
}

// File is the BENCH_*.json schema. Meta is nil in files written before
// the field existed; the gate treats an unknown machine as unknowable
// rather than mismatched.
type File struct {
	Meta       *Machine          `json:"meta,omitempty"`
	Benchmarks map[string]Result `json:"benchmarks"`
}

func main() {
	if err := run(os.Args[1:], os.Stdin, os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "benchgate:", err)
		os.Exit(1)
	}
}

func run(args []string, stdin io.Reader, stdout io.Writer) error {
	if len(args) == 0 {
		return fmt.Errorf("usage: benchgate parse|compare [flags]")
	}
	switch args[0] {
	case "parse":
		return runParse(args[1:], stdin, stdout)
	case "compare":
		return runCompare(args[1:], stdout)
	case "slo":
		return runSLO(args[1:], stdout)
	default:
		return fmt.Errorf("unknown subcommand %q (want parse, compare or slo)", args[0])
	}
}

func runParse(args []string, stdin io.Reader, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate parse", flag.ContinueOnError)
	in := fs.String("in", "", "benchmark output file (default stdin)")
	out := fs.String("out", "", "JSON output file (default stdout)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	r := stdin
	if *in != "" {
		f, err := os.Open(*in)
		if err != nil {
			return err
		}
		defer f.Close()
		r = f
	}
	parsed, err := Parse(r)
	if err != nil {
		return err
	}
	if len(parsed.Benchmarks) == 0 {
		return fmt.Errorf("no benchmark result lines found")
	}
	parsed.Meta = currentMachine()
	blob, err := json.MarshalIndent(parsed, "", "  ")
	if err != nil {
		return err
	}
	blob = append(blob, '\n')
	if *out != "" {
		return os.WriteFile(*out, blob, 0o644)
	}
	_, err = stdout.Write(blob)
	return err
}

// benchList collects repeated -bench flags.
type benchList []string

func (b *benchList) String() string { return fmt.Sprint(*b) }

func (b *benchList) Set(v string) error {
	*b = append(*b, v)
	return nil
}

func runCompare(args []string, stdout io.Writer) error {
	fs := flag.NewFlagSet("benchgate compare", flag.ContinueOnError)
	basePath := fs.String("baseline", "BENCH_baseline.json", "baseline JSON")
	curPath := fs.String("current", "BENCH_ci.json", "current-run JSON")
	var benches benchList
	fs.Var(&benches, "bench", "gated benchmark name (repeatable)")
	threshold := fs.Float64("threshold", 0.30, "allowed ns/op regression fraction")
	if err := fs.Parse(args); err != nil {
		return err
	}
	if len(benches) == 0 {
		benches = benchList{"BenchmarkEngineCachedLookup"}
	}
	base, err := load(*basePath)
	if err != nil {
		return err
	}
	cur, err := load(*curPath)
	if err != nil {
		return err
	}

	// Context first: a delta table of every benchmark both files know
	// about, so a CI log always shows the whole-suite movement around a
	// gate decision.
	names := make([]string, 0, len(cur.Benchmarks))
	for name := range cur.Benchmarks {
		if _, ok := base.Benchmarks[name]; ok {
			names = append(names, name)
		}
	}
	sort.Strings(names)
	if base.Meta != nil {
		fmt.Fprintf(stdout, "baseline machine: %s\n", base.Meta)
	}
	if cur.Meta != nil {
		fmt.Fprintf(stdout, "current machine:  %s\n", cur.Meta)
	}
	fmt.Fprintf(stdout, "benchmark delta table (baseline -> current, fastest samples):\n")
	for _, name := range names {
		b, c := base.Benchmarks[name], cur.Benchmarks[name]
		fmt.Fprintf(stdout, "%-50s %12.1f -> %12.1f ns/op (%+.1f%%)\n",
			name, b.NsPerOp, c.NsPerOp, 100*(c.NsPerOp-b.NsPerOp)/b.NsPerOp)
	}

	// Gate every named benchmark, reporting all violations before
	// failing — a run that regresses two hot paths should say so in one
	// pass.
	var failures []string
	for _, bench := range benches {
		if err := Gate(base, cur, bench, *threshold, stdout); err != nil {
			failures = append(failures, err.Error())
		}
	}
	if len(failures) > 0 {
		return fmt.Errorf("%s", strings.Join(failures, "; "))
	}
	return nil
}

// Allocation-gate slack: absolute headroom added on top of the
// fractional threshold so near-zero baselines stay gateable. A
// benchmark whose clients amortise one-time setup (a dialed socket, a
// goroutine's buffers) over b.N shows a few stray bytes per op that
// jitter with iteration count; without slack a 2 B/op baseline would
// fail on 4 B/op of the same noise. The slack is far below any real
// regression (one heap allocation is ≥16 B and +1 allocs/op exactly).
const (
	bPerOpSlack = 128
	allocsSlack = 1
)

// Gate fails when bench's current ns/op exceeds the baseline by more
// than threshold — and likewise for B/op and allocs/op when the
// baseline measured them, so an allocation-free fast path cannot
// silently start allocating while staying under the time gate. A gated
// benchmark missing from either file is an error: a silently skipped
// gate is indistinguishable from a passing one.
func Gate(base, cur *File, bench string, threshold float64, out io.Writer) error {
	b, ok := base.Benchmarks[bench]
	if !ok {
		return fmt.Errorf("baseline has no %q — refresh the baseline", bench)
	}
	c, ok := cur.Benchmarks[bench]
	if !ok {
		return fmt.Errorf("current run has no %q — did the benchmark get renamed?", bench)
	}
	if b.NsPerOp <= 0 {
		return fmt.Errorf("baseline %q has non-positive ns/op %v", bench, b.NsPerOp)
	}
	change := (c.NsPerOp - b.NsPerOp) / b.NsPerOp
	if change > threshold {
		return fmt.Errorf("%s regressed %.1f%% (%.1f -> %.1f ns/op), threshold %.0f%%",
			bench, 100*change, b.NsPerOp, c.NsPerOp, 100*threshold)
	}
	if b.BPerOp != nil && c.BPerOp != nil {
		if limit := *b.BPerOp*(1+threshold) + bPerOpSlack; *c.BPerOp > limit {
			return fmt.Errorf("%s regressed allocation bytes (%.0f -> %.0f B/op, limit %.0f)",
				bench, *b.BPerOp, *c.BPerOp, limit)
		}
	}
	if b.AllocsPerOp != nil && c.AllocsPerOp != nil {
		if limit := *b.AllocsPerOp*(1+threshold) + allocsSlack; *c.AllocsPerOp > limit {
			return fmt.Errorf("%s regressed allocation count (%.0f -> %.0f allocs/op, limit %.0f)",
				bench, *b.AllocsPerOp, *c.AllocsPerOp, limit)
		}
	}
	fmt.Fprintf(out, "gate ok: %s %+.1f%% (threshold +%.0f%%)\n", bench, 100*change, 100*threshold)
	return nil
}

func load(path string) (*File, error) {
	blob, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var f File
	if err := json.Unmarshal(blob, &f); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &f, nil
}

// benchLine matches one `go test -bench` result line, e.g.
//
//	BenchmarkEngineCachedLookup-8   1000000   812.3 ns/op   456 B/op   2 allocs/op
var benchLine = regexp.MustCompile(`^(Benchmark\S+?)(?:-\d+)?\s+\d+\s+([0-9.e+]+) ns/op(.*)$`)

var bPerOp = regexp.MustCompile(`([0-9.e+]+) B/op`)

var allocsPerOp = regexp.MustCompile(`([0-9.e+]+) allocs/op`)

// Parse reads `go test -bench` output. Repeated runs of the same
// benchmark (-count > 1) collapse to the fastest sample.
func Parse(r io.Reader) (*File, error) {
	out := &File{Benchmarks: make(map[string]Result)}
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		m := benchLine.FindStringSubmatch(strings.TrimSpace(sc.Text()))
		if m == nil {
			continue
		}
		name := m[1]
		ns, err := strconv.ParseFloat(m[2], 64)
		if err != nil {
			return nil, fmt.Errorf("bad ns/op in %q: %v", sc.Text(), err)
		}
		res := Result{NsPerOp: ns, Samples: 1}
		if bm := bPerOp.FindStringSubmatch(m[3]); bm != nil {
			v, _ := strconv.ParseFloat(bm[1], 64)
			res.BPerOp = &v
		}
		if am := allocsPerOp.FindStringSubmatch(m[3]); am != nil {
			v, _ := strconv.ParseFloat(am[1], 64)
			res.AllocsPerOp = &v
		}
		if prev, ok := out.Benchmarks[name]; ok {
			res.Samples = prev.Samples + 1
			if prev.NsPerOp < res.NsPerOp {
				res.NsPerOp = prev.NsPerOp
			}
			if prev.BPerOp != nil && (res.BPerOp == nil || *prev.BPerOp < *res.BPerOp) {
				res.BPerOp = prev.BPerOp
			}
			if prev.AllocsPerOp != nil && (res.AllocsPerOp == nil || *prev.AllocsPerOp < *res.AllocsPerOp) {
				res.AllocsPerOp = prev.AllocsPerOp
			}
		}
		out.Benchmarks[name] = res
	}
	return out, sc.Err()
}
