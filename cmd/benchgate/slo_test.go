package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dohpool/internal/loadgen"
)

// writeSLO serialises a minimal SLO document for one udp run.
func writeSLO(t *testing.T, dir, name string, p999 float64, sent, okCount uint64) string {
	t.Helper()
	rep := loadgen.Report{
		Meta: loadgen.Meta{Schema: loadgen.SchemaSLO, QPS: 100, Targets: []string{"udp"}},
		Series: []loadgen.Series{{
			Proto: "udp", Outcome: loadgen.OutcomeOK, Count: okCount,
			P50ms: p999 / 10, P90ms: p999 / 4, P99ms: p999 / 2, P999ms: p999, MaxMs: p999 * 2,
		}},
		Success: map[string]loadgen.Success{
			"udp": {Sent: sent, OK: okCount, Rate: float64(okCount) / float64(sent)},
		},
	}
	path := filepath.Join(dir, name)
	blob, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, blob, 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func runSLOArgs(t *testing.T, args ...string) (string, error) {
	t.Helper()
	var out strings.Builder
	err := run(append([]string{"slo"}, args...), strings.NewReader(""), &out)
	return out.String(), err
}

func TestSLOAbsoluteGatePasses(t *testing.T) {
	dir := t.TempDir()
	cur := writeSLO(t, dir, "cur.json", 2.0, 10000, 10000)
	out, err := runSLOArgs(t, "-current", cur, "-max-p999-ms", "50")
	if err != nil {
		t.Fatalf("gate failed: %v\n%s", err, out)
	}
	if !strings.Contains(out, "gate ok: udp") {
		t.Errorf("no gate-ok line:\n%s", out)
	}
}

func TestSLOAbsoluteP999Fails(t *testing.T) {
	dir := t.TempDir()
	cur := writeSLO(t, dir, "cur.json", 80.0, 10000, 10000)
	_, err := runSLOArgs(t, "-current", cur, "-max-p999-ms", "50")
	if err == nil || !strings.Contains(err.Error(), "p999") {
		t.Fatalf("err = %v, want p999 violation", err)
	}
}

func TestSLOSuccessRateFails(t *testing.T) {
	dir := t.TempDir()
	cur := writeSLO(t, dir, "cur.json", 2.0, 10000, 9900) // 99.0%
	_, err := runSLOArgs(t, "-current", cur, "-min-success", "0.999")
	if err == nil || !strings.Contains(err.Error(), "success rate") {
		t.Fatalf("err = %v, want success-rate violation", err)
	}
}

func TestSLOBaselineRegressionFails(t *testing.T) {
	dir := t.TempDir()
	base := writeSLO(t, dir, "base.json", 10.0, 10000, 10000)
	cur := writeSLO(t, dir, "cur.json", 40.0, 10000, 10000)
	// Limit = 10 × 1.5 + 5 = 20ms; 40ms must fail even under the 50ms
	// absolute ceiling.
	_, err := runSLOArgs(t, "-current", cur, "-baseline", base,
		"-max-p999-ms", "50", "-threshold", "0.5", "-slack-ms", "5")
	if err == nil || !strings.Contains(err.Error(), "baseline") {
		t.Fatalf("err = %v, want baseline-derived violation", err)
	}
}

func TestSLOBaselineSlackAbsorbsMicroJitter(t *testing.T) {
	dir := t.TempDir()
	// 0.04ms baseline tripling to 0.12ms is huge relatively but far
	// under the additive slack — exactly the loopback-jitter case.
	base := writeSLO(t, dir, "base.json", 0.04, 10000, 10000)
	cur := writeSLO(t, dir, "cur.json", 0.12, 10000, 10000)
	out, err := runSLOArgs(t, "-current", cur, "-baseline", base,
		"-threshold", "0.5", "-slack-ms", "5")
	if err != nil {
		t.Fatalf("slack did not absorb jitter: %v\n%s", err, out)
	}
}

func TestSLOMissingProtoFails(t *testing.T) {
	dir := t.TempDir()
	cur := writeSLO(t, dir, "cur.json", 2.0, 10000, 10000)
	_, err := runSLOArgs(t, "-current", cur, "-proto", "dot")
	if err == nil || !strings.Contains(err.Error(), "dot") {
		t.Fatalf("err = %v, want missing-transport error", err)
	}
}

func TestSLORejectsWrongSchema(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "bogus.json")
	if err := os.WriteFile(path, []byte(`{"benchmarks":{}}`), 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := runSLOArgs(t, "-current", path)
	if err == nil || !strings.Contains(err.Error(), "schema") {
		t.Fatalf("err = %v, want schema rejection", err)
	}
}
