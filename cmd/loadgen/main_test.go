package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"dohpool/internal/loadgen"
)

func TestParseTransports(t *testing.T) {
	got, err := parseTransports("udp, tcp,doh")
	if err != nil || strings.Join(got, "+") != "udp+tcp+doh" {
		t.Fatalf("parseTransports = %v, %v", got, err)
	}
	if _, err := parseTransports("smtp"); err == nil {
		t.Fatal("bad transport accepted")
	}
	if _, err := parseTransports(","); err == nil {
		t.Fatal("empty transport list accepted")
	}
}

func TestRunValidation(t *testing.T) {
	cases := map[string][]string{
		"missing domains":    {"-addr", "127.0.0.1:53"},
		"missing addr":       {"-domains", "pool.test."},
		"missing dot target": {"-transports", "dot", "-domains", "pool.test."},
		"missing doh target": {"-transports", "doh", "-domains", "pool.test."},
		"bad transport":      {"-transports", "quic", "-domains", "pool.test.", "-addr", "x"},
	}
	for name, args := range cases {
		if err := run(args); err == nil {
			t.Errorf("%s: run(%v) accepted", name, args)
		}
	}
}

// TestSelfhostEndToEnd boots the full in-process stack — testbed,
// consensus client, all four serving planes — and drives a short
// multi-transport schedule through real sockets, asserting the written
// SLO document shows every query answered.
func TestSelfhostEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full testbed")
	}
	out := filepath.Join(t.TempDir(), "slo.json")
	err := run([]string{
		"-selfhost",
		"-transports", "udp,tcp,dot,doh",
		"-selfhost-domains", "4",
		"-qps", "400",
		"-duration", "1s",
		"-clients", "8",
		"-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatalf("SLO document does not parse: %v\n%s", err, raw)
	}
	if rep.Meta.Schema != loadgen.SchemaSLO {
		t.Errorf("schema = %q", rep.Meta.Schema)
	}
	for _, proto := range []string{"udp", "tcp", "dot", "doh"} {
		s, ok := rep.Success[proto]
		if !ok {
			t.Errorf("no success entry for %s", proto)
			continue
		}
		if s.Sent != 100 {
			t.Errorf("%s sent %d, want its even 100-query share", proto, s.Sent)
		}
		// On loopback with a prewarmed cache nothing may fail.
		if s.Rate != 1 {
			t.Errorf("%s success rate %.4f (%d/%d ok)", proto, s.Rate, s.OK, s.Sent)
		}
	}
}

// TestSelfhostNetChaosDegradedButBounded turns on network weather
// (drop + delay on the client → resolver paths) and checks the run
// completes with every UDP query still answered from the prewarmed
// cache: upstream faults must degrade refresh latency, not cached
// serving.
func TestSelfhostNetChaosDegradedButBounded(t *testing.T) {
	if testing.Short() {
		t.Skip("boots a full testbed")
	}
	out := filepath.Join(t.TempDir(), "slo.json")
	err := run([]string{
		"-selfhost",
		"-transports", "udp",
		"-selfhost-domains", "4",
		"-net-chaos-drop", "0.2",
		"-net-chaos-delay", "2ms",
		"-qps", "300",
		"-duration", "1s",
		"-json", out,
	})
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(out)
	if err != nil {
		t.Fatal(err)
	}
	var rep loadgen.Report
	if err := json.Unmarshal(raw, &rep); err != nil {
		t.Fatal(err)
	}
	s := rep.Success["udp"]
	if s.Sent != 300 || s.Rate != 1 {
		t.Errorf("under net chaos: %d/%d ok (rate %.4f), want cached serving unharmed", s.OK, s.Sent, s.Rate)
	}
}
