// Command loadgen drives a dohpoold serving plane with an open-loop
// (coordinated-omission-safe) query schedule and reports per-transport
// latency percentiles and success rates.
//
// The arrival schedule is fixed up front — query i is due at start +
// i/qps — and every latency is measured from the *scheduled* arrival,
// so server stalls surface as tail latency instead of quietly slowing
// the generator down. Domains are drawn zipfian, hottest first, to
// model real resolver popularity.
//
// Two modes:
//
//	# Stand-alone: point it at a running dohpoold
//	loadgen -addr 127.0.0.1:5353 -transports udp,tcp \
//	  -domains pool.ntp.org,example.com -qps 1000 -duration 10s
//
//	# Self-hosted: boot the full Figure 1 testbed plus a dohpoold
//	# in-process, then load it (the CI SLO smoke job runs this)
//	loadgen -selfhost -transports udp,tcp,dot,doh -qps 2000 -duration 5s
//
// Self-hosted mode accepts the entire shared dohpoold flag surface
// (cache, refresh, trust, chaos, net-chaos, serving), so a degraded-
// weather run is one invocation:
//
//	loadgen -selfhost -net-chaos-drop 0.05 -net-chaos-delay 3ms ...
//
// -json writes the BENCH_slo.json document consumed by `benchgate slo`.
package main

import (
	"context"
	"crypto/tls"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"dohpool"
	"dohpool/internal/cliflags"
	"dohpool/internal/doh"
	"dohpool/internal/loadgen"
	"dohpool/internal/testbed"
	"dohpool/internal/testpki"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "loadgen:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("loadgen", flag.ContinueOnError)
	groups := cliflags.RegisterAll(fs, cliflags.ServeOptions{})
	var (
		transports = fs.String("transports", "udp", "comma-separated serving planes to drive: udp,tcp,dot,doh")
		addr       = fs.String("addr", "", "dohpoold UDP+TCP address (stand-alone mode)")
		dotTarget  = fs.String("dot-target", "", "dohpoold DoT address (stand-alone mode)")
		dohTarget  = fs.String("doh-target", "", "dohpoold DoH URL (stand-alone mode)")
		caFile     = fs.String("ca", "", "PEM file with the serving CA for dot/doh targets")
		domains    = fs.String("domains", "", "comma-separated query domains, hottest first (stand-alone mode)")

		qps      = fs.Float64("qps", 500, "total offered load across all transports")
		duration = fs.Duration("duration", 5*time.Second, "length of the arrival schedule")
		clients  = fs.Int("clients", 0, "concurrent in-flight queries per transport (0 = default 16)")
		qTimeout = fs.Duration("query-timeout", 2*time.Second, "per-query timeout")
		zipfS    = fs.Float64("zipf", 1.1, "zipf exponent over the domain list (> 1; closer to 1 = flatter)")
		seed     = fs.Int64("seed", 1, "seed for the domain-pick randomness")
		prewarm  = fs.Bool("prewarm", true, "issue one blocking query per (transport, domain) before the clock starts")
		jsonOut  = fs.String("json", "", "write the BENCH_slo.json document here (\"\" = skip)")

		selfhost          = fs.Bool("selfhost", false, "boot the loopback testbed and a dohpoold in-process and load that")
		selfhostResolvers = fs.Int("selfhost-resolvers", 3, "DoH resolvers in the self-hosted testbed")
		selfhostDomains   = fs.Int("selfhost-domains", 16, "extra pool domains in the self-hosted zone (zipfian targets)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	protos, err := parseTransports(*transports)
	if err != nil {
		return err
	}

	cfg := loadgen.Config{
		QPS:      *qps,
		Duration: *duration,
		Clients:  *clients,
		Timeout:  *qTimeout,
		ZipfS:    *zipfS,
		Seed:     *seed,
		Prewarm:  *prewarm,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *selfhost {
		cleanup, err := bootSelfhost(groups, protos, *selfhostResolvers, *selfhostDomains, &cfg)
		if cleanup != nil {
			defer cleanup()
		}
		if err != nil {
			return err
		}
	} else {
		if err := externalTargets(protos, *addr, *dotTarget, *dohTarget, *caFile, *domains, &cfg); err != nil {
			return err
		}
	}

	fmt.Printf("loadgen: %v qps across %s for %v, %d domains (zipf %.2f)\n",
		cfg.QPS, strings.Join(protos, "+"), cfg.Duration, len(cfg.Domains), cfg.ZipfS)
	rep, err := loadgen.Run(ctx, cfg)
	if err != nil {
		return err
	}
	rep.WriteTable(os.Stdout)
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := rep.WriteJSON(f); err != nil {
			_ = f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("loadgen: SLO document written to %s\n", *jsonOut)
	}
	return nil
}

// parseTransports validates the -transports list.
func parseTransports(s string) ([]string, error) {
	var protos []string
	for _, p := range strings.Split(s, ",") {
		p = strings.TrimSpace(p)
		switch p {
		case loadgen.ProtoUDP, loadgen.ProtoTCP, loadgen.ProtoDoT, loadgen.ProtoDoH:
			protos = append(protos, p)
		case "":
		default:
			return nil, fmt.Errorf("unknown transport %q (want udp, tcp, dot, doh)", p)
		}
	}
	if len(protos) == 0 {
		return nil, fmt.Errorf("no transports selected")
	}
	return protos, nil
}

// externalTargets fills cfg for stand-alone mode against a running
// dohpoold.
func externalTargets(protos []string, addr, dotTarget, dohTarget, caFile, domains string, cfg *loadgen.Config) error {
	if domains == "" {
		return fmt.Errorf("-domains is required without -selfhost")
	}
	for _, d := range strings.Split(domains, ",") {
		if d = strings.TrimSpace(d); d != "" {
			cfg.Domains = append(cfg.Domains, d)
		}
	}
	var serveTLS *tls.Config
	if caFile != "" {
		pemBytes, err := os.ReadFile(caFile)
		if err != nil {
			return fmt.Errorf("read -ca file: %w", err)
		}
		pool, err := testpki.PoolFromPEM(pemBytes)
		if err != nil {
			return fmt.Errorf("parse -ca file: %w", err)
		}
		serveTLS = &tls.Config{RootCAs: pool, MinVersion: tls.VersionTLS12}
	}
	for _, p := range protos {
		switch p {
		case loadgen.ProtoUDP, loadgen.ProtoTCP:
			if addr == "" {
				return fmt.Errorf("transport %s needs -addr", p)
			}
			cfg.Targets = append(cfg.Targets, loadgen.Target{Proto: p, Addr: addr})
		case loadgen.ProtoDoT:
			if dotTarget == "" {
				return fmt.Errorf("transport dot needs -dot-target")
			}
			cfg.Targets = append(cfg.Targets, loadgen.Target{Proto: p, Addr: dotTarget, TLS: serveTLS})
		case loadgen.ProtoDoH:
			if dohTarget == "" {
				return fmt.Errorf("transport doh needs -doh-target")
			}
			cfg.Targets = append(cfg.Targets, loadgen.Target{Proto: p, Addr: dohTarget, TLS: serveTLS})
		}
	}
	return nil
}

// bootSelfhost starts the loopback Figure 1 testbed plus an in-process
// dohpoold configured from the shared flag groups, and fills cfg with
// its addresses and pool domains. The returned cleanup (non-nil even on
// error) tears the stack down in dependency order.
func bootSelfhost(groups *cliflags.Set, protos []string, resolvers, extraDomains int, cfg *loadgen.Config) (func(), error) {
	var poolCfg dohpool.Config
	if err := groups.Apply(&poolCfg); err != nil {
		return nil, err
	}

	tb, err := testbed.Start(testbed.Config{
		Resolvers:        resolvers,
		ExtraPoolDomains: extraDomains,
	})
	if err != nil {
		return nil, err
	}
	cleanup := func() { _ = tb.Close() }

	poolCfg.TLSConfig = tb.CA.ClientTLS()
	for _, ep := range tb.Endpoints {
		poolCfg.Resolvers = append(poolCfg.Resolvers, dohpool.Resolver{Name: ep.Name, URL: ep.URL})
	}
	needDoT := contains(protos, loadgen.ProtoDoT)
	needDoH := contains(protos, loadgen.ProtoDoH)
	if needDoT && poolCfg.Serve.DoTAddr == "" {
		poolCfg.Serve.DoTAddr = "127.0.0.1:0"
	}
	if needDoH && poolCfg.Serve.DoHAddr == "" {
		poolCfg.Serve.DoHAddr = "127.0.0.1:0"
	}
	if (needDoT || needDoH) && poolCfg.Serve.TLSCert == "" {
		poolCfg.Serve.TLSSelfSigned = true
	}

	client, err := dohpool.New(poolCfg)
	if err != nil {
		return cleanup, err
	}
	cleanup = func() { _ = client.Close(); _ = tb.Close() }
	fe, err := client.Serve("127.0.0.1:0")
	if err != nil {
		return cleanup, err
	}
	cleanup = func() { _ = fe.Close(); _ = client.Close(); _ = tb.Close() }

	var serveTLS *tls.Config
	if needDoT || needDoH {
		caPEM := client.ServingCAPEM()
		if caPEM == nil {
			return cleanup, fmt.Errorf("self-hosted encrypted transports need -tls-self-signed (or -tls-cert/-tls-key and a matching -ca)")
		}
		roots, err := testpki.PoolFromPEM(caPEM)
		if err != nil {
			return cleanup, err
		}
		serveTLS = &tls.Config{RootCAs: roots, MinVersion: tls.VersionTLS12}
	}
	for _, p := range protos {
		switch p {
		case loadgen.ProtoUDP, loadgen.ProtoTCP:
			cfg.Targets = append(cfg.Targets, loadgen.Target{Proto: p, Addr: fe.Addr()})
		case loadgen.ProtoDoT:
			cfg.Targets = append(cfg.Targets, loadgen.Target{Proto: p, Addr: fe.DoTAddr(), TLS: serveTLS})
		case loadgen.ProtoDoH:
			cfg.Targets = append(cfg.Targets, loadgen.Target{Proto: p, Addr: "https://" + fe.DoHAddr() + doh.DefaultPath, TLS: serveTLS})
		}
	}
	cfg.Domains = tb.PoolDomains()
	fmt.Printf("loadgen: self-hosted stack up — %d resolvers, frontend %s\n", resolvers, fe.Addr())
	return cleanup, nil
}

func contains(list []string, v string) bool {
	for _, s := range list {
		if s == v {
			return true
		}
	}
	return false
}
