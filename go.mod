module dohpool

go 1.24
