module dohpool

go 1.23
