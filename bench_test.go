package dohpool

// Benchmark harness: one benchmark per experiment artefact (E1–E9, see
// DESIGN.md §4) plus micro-benchmarks for the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks measure the per-operation cost of the pipeline each
// experiment exercises; the full statistical regeneration lives in
// cmd/experiments.

import (
	"context"
	"crypto/tls"
	"errors"
	"math/rand"
	"net"
	"net/netip"
	"testing"
	"time"

	"dohpool/internal/analysis"
	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/testbed"
	"dohpool/internal/testpki"
	"dohpool/internal/transport"
)

func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

func benchTestbed(b *testing.B, cfg testbed.Config) *testbed.Testbed {
	b.Helper()
	tb, err := testbed.Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = tb.Close() })
	return tb
}

func benchGenerator(b *testing.B, tb *testbed.Testbed, opts testbed.GeneratorOptions) *core.Generator {
	b.Helper()
	gen, err := tb.Generator(opts)
	if err != nil {
		b.Fatal(err)
	}
	return gen
}

// BenchmarkE1Pipeline measures one full Figure 1 pool generation: 3 DoH
// exchanges over TLS, recursive resolution, truncation and combination.
func BenchmarkE1Pipeline(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Fraction measures a full fraction-bound check: pool
// generation with one compromised resolver plus the fraction computation.
func BenchmarkE2Fraction(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
	})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if f := core.Fraction(pool.Addrs, attack.IsAttackerAddr); f != 1.0/3 {
			b.Fatalf("fraction = %v", f)
		}
	}
}

// BenchmarkE3Probability measures the analytical machinery of Section
// III-b: required count, paper formula, exact binomial tail and one
// simulated plan, across the full (N, p) sweep of experiment E3.
func BenchmarkE3Probability(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
			for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
				m, err := analysis.RequiredResolverCount(n, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := analysis.PaperSuccessProbability(p, n, 0.5); err != nil {
					b.Fatal(err)
				}
				if _, err := analysis.BinomialTail(n, m, p); err != nil {
					b.Fatal(err)
				}
				_ = attack.BernoulliPlan(n, p, rng).CountCompromised()
			}
		}
	}
}

// BenchmarkE4OffPath measures one pool generation while an off-path
// attacker races every resolver path.
func BenchmarkE4OffPath(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{
		Adversary:            testbed.AdversaryOffPath,
		OffPathProb:          0.3,
		Plan:                 attack.FixedPlan(3, 0, 1, 2),
		DisableResolverCache: true,
	})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Truncation measures pool generation under the response-
// inflation attack (the attacker's answer carries 100 records that
// truncation must discard).
func BenchmarkE5Truncation(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
		Payload:   attack.PayloadInflate,
	})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if pool.TruncateLength != 4 {
			b.Fatalf("K = %d", pool.TruncateLength)
		}
	}
}

// BenchmarkE6Duplicates measures the duplicate-preserving combination
// against the deduplicating ablation on a large synthetic pool.
func BenchmarkE6Duplicates(b *testing.B) {
	lists := make([][]netip.Addr, 15)
	for i := range lists {
		lists[i] = make([]netip.Addr, 64)
		for j := range lists[i] {
			lists[i][j] = netip.AddrFrom4([4]byte{192, 0, 2, byte(j % 32)})
		}
	}
	b.Run("combine-keep-duplicates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool, err := core.GeneratePool(lists)
			if err != nil {
				b.Fatal(err)
			}
			if len(pool) == 0 {
				b.Fatal("empty pool")
			}
		}
	})
	b.Run("dedupe-ablation", func(b *testing.B) {
		pool, err := core.GeneratePool(lists)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := core.Dedupe(pool); len(got) == 0 {
				b.Fatal("empty dedupe")
			}
		}
	})
}

// BenchmarkE7Chronos measures one Chronos poll (6 SNTP exchanges plus
// crop/agreement evaluation) over a DoH-generated pool.
func BenchmarkE7Chronos(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{PoolSize: 9})
	fleet, err := testbed.StartNTPFleet(testbed.NTPFleetConfig{BenignAddrs: tb.BenignAddrs})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = fleet.Close() })
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := chronos.New(chronos.Config{Pool: pool.Addrs, Sampler: fleet, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Poll(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Majority measures the majority vote over synthetic answer
// lists of realistic size.
func BenchmarkE8Majority(b *testing.B) {
	lists := make([][]netip.Addr, 15)
	for i := range lists {
		lists[i] = make([]netip.Addr, 16)
		for j := range lists[i] {
			lists[i][j] = netip.AddrFrom4([4]byte{192, 0, 2, byte((i + j) % 24)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.MajorityFilter(lists); len(got) == 0 {
			b.Fatal("empty majority")
		}
	}
}

// BenchmarkE9Overhead sweeps pool-generation latency over N resolvers,
// concurrent vs sequential (ablation A3), plus the plain-DNS baseline.
func BenchmarkE9Overhead(b *testing.B) {
	b.Run("plain-dns-baseline", func(b *testing.B) {
		tb := benchTestbed(b, testbed.Config{})
		udp := &transport.UDP{}
		ctx := benchCtx(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := udp.Exchange(ctx, q, tb.Auth[0].Addr()); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 3, 5, 9} {
		for _, mode := range []struct {
			name string
			seq  bool
		}{{"concurrent", false}, {"sequential", true}} {
			if n == 1 && mode.seq {
				continue
			}
			b.Run("N="+itoa(n)+"/"+mode.name, func(b *testing.B) {
				tb := benchTestbed(b, testbed.Config{Resolvers: n})
				gen := benchGenerator(b, tb, testbed.GeneratorOptions{Sequential: mode.seq})
				ctx := benchCtx(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- micro-benchmarks on the hot paths --------------------------------

// BenchmarkWireEncode measures DNS message encoding with compression.
func BenchmarkWireEncode(b *testing.B) {
	msg := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	msg.Questions = []dnswire.Question{{Name: "pool.ntp.org.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.AddressRecord(
			"pool.ntp.org.", netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), 150))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecode measures DNS message decoding.
func BenchmarkWireDecode(b *testing.B) {
	msg := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	msg.Questions = []dnswire.Question{{Name: "pool.ntp.org.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.AddressRecord(
			"pool.ntp.org.", netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), 150))
	}
	wire, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratePool measures the pure Algorithm 1 core.
func BenchmarkGeneratePool(b *testing.B) {
	lists := make([][]netip.Addr, 15)
	for i := range lists {
		lists[i] = make([]netip.Addr, 4+i%3)
		for j := range lists[i] {
			lists[i][j] = netip.AddrFrom4([4]byte{192, 0, 2, byte(i*8 + j)})
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.GeneratePool(lists); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoHExchange measures one RFC 8484 exchange over TLS loopback.
func BenchmarkDoHExchange(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{Resolvers: 1})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Client.Query(ctx, tb.Endpoints[0].URL, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// --- consensus-engine benchmarks --------------------------------------

func benchEngine(b *testing.B, tb *testbed.Testbed, ecfg core.EngineConfig) *core.Engine {
	b.Helper()
	eng, err := core.NewEngine(core.Config{
		Resolvers: tb.Endpoints,
		Querier:   tb.Client,
	}, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = eng.Close() })
	return eng
}

// BenchmarkEngineCachedLookup measures a repeat lookup served entirely
// from the TTL-aware consensus cache — the production hot path. Compare
// against BenchmarkEngineUncachedLookup (or BenchmarkE1Pipeline) for the
// caching win; the acceptance bar is ≥10× fewer ns/op.
func BenchmarkEngineCachedLookup(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{})
	ctx := benchCtx(b)
	if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	if eng.NetworkRuns() != 1 {
		b.Fatalf("cached benchmark hit the network %d times", eng.NetworkRuns())
	}
}

// BenchmarkEngineCachedLookupParallel hammers one warm key from every
// core at once (b.RunParallel) — the million-clients-one-domain shape.
// On the sharded store the fresh-hit path is a shard read-lock plus
// atomics, so ns/op should fall as GOMAXPROCS grows instead of
// plateauing behind a single cache mutex; compare against the serial
// BenchmarkEngineCachedLookup.
func BenchmarkEngineCachedLookupParallel(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{})
	ctx := benchCtx(b)
	if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if eng.NetworkRuns() != 1 {
		b.Fatalf("parallel cached benchmark hit the network %d times", eng.NetworkRuns())
	}
}

// BenchmarkEngineTrustScoredLookup is BenchmarkEngineCachedLookup with
// trust scoring and enforcement enabled — the benchgate pairing that
// proves trust stays off the cached-hit fast path: scoring runs only when
// a pool is generated, so the cached ns/op must match the trust-free
// engine within noise.
func BenchmarkEngineTrustScoredLookup(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{TrustWindow: 8, TrustMinScore: 0.5})
	ctx := benchCtx(b)
	if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		b.Fatal(err) // warm the cache (and the one trust observation)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	if eng.NetworkRuns() != 1 {
		b.Fatalf("trust-scored cached benchmark hit the network %d times", eng.NetworkRuns())
	}
}

// BenchmarkEngineUncachedLookup is the same lookup with caching disabled:
// every iteration pays the full 3-resolver DoH fan-out (the seed's
// behaviour for every query).
func BenchmarkEngineUncachedLookup(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{CacheSize: -1})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontendThroughput measures end-to-end frontend queries over
// all four serving transports (plain UDP/TCP, RFC 7858 DoT, RFC 8484
// DoH) with the engine underneath, parallel clients hammering one
// cached domain — the million-client serving shape. The UDP pair runs a
// raw persistent-socket client (pre-encoded query, ID patched per
// iteration, byte-level response checks) so the measurement — and the
// allocs/op column — is the server's wire-cache fast path, not client
// message building: "udp" forces the portable one-datagram-per-syscall
// path, "udp_batch" the platform recvmmsg/sendmmsg path. The encrypted
// pair adds what the authenticated channel costs (DoT resumes TLS
// sessions across exchanges; DoH reuses pooled HTTP/2 connections).
func BenchmarkFrontendThroughput(b *testing.B) {
	// serve builds the warm serving stack shared by every transport:
	// testbed, engine, frontend on all four listeners.
	serve := func(b *testing.B, udpBatch int) (*testbed.Testbed, *core.Frontend, *testpki.CA) {
		tb := benchTestbed(b, testbed.Config{})
		eng := benchEngine(b, tb, core.EngineConfig{})
		ca, err := testpki.NewCA()
		if err != nil {
			b.Fatal(err)
		}
		tlsCfg, err := ca.ServerTLS("127.0.0.1")
		if err != nil {
			b.Fatal(err)
		}
		fe, err := core.NewFrontendWithConfig("127.0.0.1:0", eng, core.FrontendConfig{
			Timeout:   5 * time.Second,
			DoTAddr:   "127.0.0.1:0",
			DoHAddr:   "127.0.0.1:0",
			TLSConfig: tlsCfg,
			UDPBatch:  udpBatch,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = fe.Close() })
		return tb, fe, ca
	}
	run := func(b *testing.B, mkExchange func(ca *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error)) {
		tb, fe, ca := serve(b, 0)
		exchange := mkExchange(ca, fe)
		ctx := benchCtx(b)
		// Warm the cache so the measurement isolates serving throughput.
		warm, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exchange(ctx, warm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// b.Error, not b.Fatal: FailNow must not run outside the
			// benchmark goroutine.
			for pb.Next() {
				q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
				if err != nil {
					b.Error(err)
					return
				}
				resp, err := exchange(ctx, q)
				if err != nil {
					b.Error(err)
					return
				}
				if len(resp.AnswerAddrs()) == 0 && !resp.Header.Truncated {
					b.Error("empty answer")
					return
				}
			}
		})
	}
	// runUDP is the raw-socket variant: one connected UDP socket per
	// client goroutine, a query encoded once with only its transaction ID
	// rewritten per iteration, and responses validated at the byte level
	// (ID echo, QR bit, non-empty answer unless truncated). The client
	// side allocates nothing per exchange, so ns/op and allocs/op track
	// the server's serve path.
	runUDP := func(b *testing.B, udpBatch int) {
		tb, fe, _ := serve(b, udpBatch)
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := q.Encode()
		if err != nil {
			b.Fatal(err)
		}
		exchange := func(conn net.Conn, query, buf []byte) error {
			if _, err := conn.Write(query); err != nil {
				return err
			}
			n, err := conn.Read(buf)
			if err != nil {
				return err
			}
			if n < 12 || buf[0] != query[0] || buf[1] != query[1] || buf[2]&0x80 == 0 {
				return errMalformedAnswer
			}
			if buf[6] == 0 && buf[7] == 0 && buf[2]&0x02 == 0 {
				return errEmptyAnswer
			}
			return nil
		}
		// Warm the cache so the measurement isolates serving throughput.
		warmConn, err := net.Dial("udp", fe.Addr())
		if err != nil {
			b.Fatal(err)
		}
		_ = warmConn.SetDeadline(time.Now().Add(time.Minute))
		if err := exchange(warmConn, wire, make([]byte, 4096)); err != nil {
			b.Fatal(err)
		}
		_ = warmConn.Close()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			conn, err := net.Dial("udp", fe.Addr())
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
			query := append([]byte(nil), wire...)
			buf := make([]byte, 4096)
			var id uint16
			for pb.Next() {
				id++
				query[0], query[1] = byte(id>>8), byte(id)
				if err := exchange(conn, query, buf); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("udp", func(b *testing.B) { runUDP(b, 1) })
	b.Run("udp_batch", func(b *testing.B) { runUDP(b, 0) })
	b.Run("tcp", func(b *testing.B) {
		run(b, func(_ *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
			tcp := &transport.TCP{}
			return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
				return tcp.Exchange(ctx, q, fe.Addr())
			}
		})
	})
	b.Run("dot", func(b *testing.B) {
		run(b, func(ca *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
			// A session cache lets every exchange after the first resume
			// the TLS session (a TLS 1.3 PSK handshake), amortising the
			// full certificate handshake the per-exchange dial would
			// otherwise pay — the stub-resolver shape with a warm client.
			tlsCfg := ca.ClientTLS()
			tlsCfg.ClientSessionCache = tls.NewLRUClientSessionCache(8)
			dot := &transport.DoT{TLSConfig: tlsCfg}
			return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
				return dot.Exchange(ctx, q, fe.DoTAddr())
			}
		})
	})
	b.Run("doh", func(b *testing.B) {
		run(b, func(ca *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
			client := doh.NewClient(doh.WithTLSConfig(ca.ClientTLS()))
			url := "https://" + fe.DoHAddr() + doh.DefaultPath
			return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
				return client.Exchange(ctx, q, url)
			}
		})
	})
}

// Sentinel errors for the raw UDP benchmark client: constructed once so
// the per-iteration validation cannot allocate.
var (
	errMalformedAnswer = errors.New("malformed answer")
	errEmptyAnswer     = errors.New("empty answer")
)

// BenchmarkWirePatchID measures the complete per-query patch the wire
// cache's fast path applies to a pre-encoded response: transaction ID,
// RD/CD flag echo, and aged answer TTLs. This is everything a cached
// UDP hit pays beyond the memcpy, so it must stay allocation-free and
// in the low tens of nanoseconds.
func BenchmarkWirePatchID(b *testing.B) {
	msg := &dnswire.Message{Header: dnswire.Header{Response: true, RecursionAvailable: true}}
	msg.Questions = []dnswire.Question{{Name: "pool.ntp.org.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.AddressRecord(
			"pool.ntp.org.", netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), 150))
	}
	wire, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	offsets, err := dnswire.AnswerTTLOffsets(wire)
	if err != nil {
		b.Fatal(err)
	}
	query := []byte{0, 0, 0x01, 0x10, 0, 1, 0, 0, 0, 0, 0, 0} // RD and CD set
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnswire.PatchID(wire, uint16(i))
		dnswire.EchoFlags(wire, query)
		dnswire.PatchAnswerTTLs(wire, offsets, uint32(i%150+1))
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
