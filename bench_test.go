package dohpool

// Benchmark harness: one benchmark per experiment artefact (E1–E9, see
// DESIGN.md §4) plus micro-benchmarks for the hot paths. Run with:
//
//	go test -bench=. -benchmem
//
// The E-benchmarks measure the per-operation cost of the pipeline each
// experiment exercises; the full statistical regeneration lives in
// cmd/experiments.

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"io"
	"math/rand"
	"net"
	"net/http"
	"net/netip"
	"testing"
	"time"

	"dohpool/internal/analysis"
	"dohpool/internal/attack"
	"dohpool/internal/chronos"
	"dohpool/internal/core"
	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/testbed"
	"dohpool/internal/testpki"
	"dohpool/internal/transport"
	"dohpool/internal/udpbatch"
)

func benchCtx(b *testing.B) context.Context {
	b.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Minute)
	b.Cleanup(cancel)
	return ctx
}

func benchTestbed(b *testing.B, cfg testbed.Config) *testbed.Testbed {
	b.Helper()
	tb, err := testbed.Start(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = tb.Close() })
	return tb
}

func benchGenerator(b *testing.B, tb *testbed.Testbed, opts testbed.GeneratorOptions) *core.Generator {
	b.Helper()
	gen, err := tb.Generator(opts)
	if err != nil {
		b.Fatal(err)
	}
	return gen
}

// BenchmarkE1Pipeline measures one full Figure 1 pool generation: 3 DoH
// exchanges over TLS, recursive resolution, truncation and combination.
func BenchmarkE1Pipeline(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE2Fraction measures a full fraction-bound check: pool
// generation with one compromised resolver plus the fraction computation.
func BenchmarkE2Fraction(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
	})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if f := core.Fraction(pool.Addrs, attack.IsAttackerAddr); f != 1.0/3 {
			b.Fatalf("fraction = %v", f)
		}
	}
}

// BenchmarkE3Probability measures the analytical machinery of Section
// III-b: required count, paper formula, exact binomial tail and one
// simulated plan, across the full (N, p) sweep of experiment E3.
func BenchmarkE3Probability(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for _, n := range []int{1, 3, 5, 7, 9, 11, 13, 15} {
			for _, p := range []float64{0.05, 0.1, 0.2, 0.3, 0.5} {
				m, err := analysis.RequiredResolverCount(n, 0.5)
				if err != nil {
					b.Fatal(err)
				}
				if _, err := analysis.PaperSuccessProbability(p, n, 0.5); err != nil {
					b.Fatal(err)
				}
				if _, err := analysis.BinomialTail(n, m, p); err != nil {
					b.Fatal(err)
				}
				_ = attack.BernoulliPlan(n, p, rng).CountCompromised()
			}
		}
	}
}

// BenchmarkE4OffPath measures one pool generation while an off-path
// attacker races every resolver path.
func BenchmarkE4OffPath(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{
		Adversary:            testbed.AdversaryOffPath,
		OffPathProb:          0.3,
		Plan:                 attack.FixedPlan(3, 0, 1, 2),
		DisableResolverCache: true,
	})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE5Truncation measures pool generation under the response-
// inflation attack (the attacker's answer carries 100 records that
// truncation must discard).
func BenchmarkE5Truncation(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{
		Adversary: testbed.AdversaryResolver,
		Plan:      attack.FixedPlan(3, 0),
		Payload:   attack.PayloadInflate,
	})
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if pool.TruncateLength != 4 {
			b.Fatalf("K = %d", pool.TruncateLength)
		}
	}
}

// BenchmarkE6Duplicates measures the duplicate-preserving combination
// against the deduplicating ablation on a large synthetic pool.
func BenchmarkE6Duplicates(b *testing.B) {
	lists := make([][]netip.Addr, 15)
	for i := range lists {
		lists[i] = make([]netip.Addr, 64)
		for j := range lists[i] {
			lists[i][j] = netip.AddrFrom4([4]byte{192, 0, 2, byte(j % 32)})
		}
	}
	b.Run("combine-keep-duplicates", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			pool, err := core.GeneratePool(lists)
			if err != nil {
				b.Fatal(err)
			}
			if len(pool) == 0 {
				b.Fatal("empty pool")
			}
		}
	})
	b.Run("dedupe-ablation", func(b *testing.B) {
		pool, err := core.GeneratePool(lists)
		if err != nil {
			b.Fatal(err)
		}
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			if got := core.Dedupe(pool); len(got) == 0 {
				b.Fatal("empty dedupe")
			}
		}
	})
}

// BenchmarkE7Chronos measures one Chronos poll (6 SNTP exchanges plus
// crop/agreement evaluation) over a DoH-generated pool.
func BenchmarkE7Chronos(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{PoolSize: 9})
	fleet, err := testbed.StartNTPFleet(testbed.NTPFleetConfig{BenignAddrs: tb.BenignAddrs})
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = fleet.Close() })
	gen := benchGenerator(b, tb, testbed.GeneratorOptions{})
	ctx := benchCtx(b)
	pool, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA)
	if err != nil {
		b.Fatal(err)
	}
	cl, err := chronos.New(chronos.Config{Pool: pool.Addrs, Sampler: fleet, Seed: 1})
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := cl.Poll(ctx); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkE8Majority measures the majority vote over synthetic answer
// lists of realistic size.
func BenchmarkE8Majority(b *testing.B) {
	lists := make([][]netip.Addr, 15)
	for i := range lists {
		lists[i] = make([]netip.Addr, 16)
		for j := range lists[i] {
			lists[i][j] = netip.AddrFrom4([4]byte{192, 0, 2, byte((i + j) % 24)})
		}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if got := core.MajorityFilter(lists); len(got) == 0 {
			b.Fatal("empty majority")
		}
	}
}

// BenchmarkE9Overhead sweeps pool-generation latency over N resolvers,
// concurrent vs sequential (ablation A3), plus the plain-DNS baseline.
func BenchmarkE9Overhead(b *testing.B) {
	b.Run("plain-dns-baseline", func(b *testing.B) {
		tb := benchTestbed(b, testbed.Config{})
		udp := &transport.UDP{}
		ctx := benchCtx(b)
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
			if err != nil {
				b.Fatal(err)
			}
			if _, err := udp.Exchange(ctx, q, tb.Auth[0].Addr()); err != nil {
				b.Fatal(err)
			}
		}
	})
	for _, n := range []int{1, 3, 5, 9} {
		for _, mode := range []struct {
			name string
			seq  bool
		}{{"concurrent", false}, {"sequential", true}} {
			if n == 1 && mode.seq {
				continue
			}
			b.Run("N="+itoa(n)+"/"+mode.name, func(b *testing.B) {
				tb := benchTestbed(b, testbed.Config{Resolvers: n})
				gen := benchGenerator(b, tb, testbed.GeneratorOptions{Sequential: mode.seq})
				ctx := benchCtx(b)
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := gen.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// --- micro-benchmarks on the hot paths --------------------------------

// BenchmarkWireEncode measures DNS message encoding with compression.
func BenchmarkWireEncode(b *testing.B) {
	msg := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	msg.Questions = []dnswire.Question{{Name: "pool.ntp.org.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.AddressRecord(
			"pool.ntp.org.", netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), 150))
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := msg.Encode(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireDecode measures DNS message decoding.
func BenchmarkWireDecode(b *testing.B) {
	msg := &dnswire.Message{Header: dnswire.Header{ID: 1, Response: true}}
	msg.Questions = []dnswire.Question{{Name: "pool.ntp.org.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.AddressRecord(
			"pool.ntp.org.", netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), 150))
	}
	wire, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := dnswire.Decode(wire); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkGeneratePool measures the pure Algorithm 1 core.
func BenchmarkGeneratePool(b *testing.B) {
	lists := make([][]netip.Addr, 15)
	for i := range lists {
		lists[i] = make([]netip.Addr, 4+i%3)
		for j := range lists[i] {
			lists[i][j] = netip.AddrFrom4([4]byte{192, 0, 2, byte(i*8 + j)})
		}
	}
	b.ResetTimer()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		if _, err := core.GeneratePool(lists); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDoHExchange measures one RFC 8484 exchange over TLS loopback.
func BenchmarkDoHExchange(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{Resolvers: 1})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := tb.Client.Query(ctx, tb.Endpoints[0].URL, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// --- consensus-engine benchmarks --------------------------------------

func benchEngine(b *testing.B, tb *testbed.Testbed, ecfg core.EngineConfig) *core.Engine {
	b.Helper()
	eng, err := core.NewEngine(core.Config{
		Resolvers: tb.Endpoints,
		Querier:   tb.Client,
	}, ecfg)
	if err != nil {
		b.Fatal(err)
	}
	b.Cleanup(func() { _ = eng.Close() })
	return eng
}

// BenchmarkEngineCachedLookup measures a repeat lookup served entirely
// from the TTL-aware consensus cache — the production hot path. Compare
// against BenchmarkEngineUncachedLookup (or BenchmarkE1Pipeline) for the
// caching win; the acceptance bar is ≥10× fewer ns/op.
func BenchmarkEngineCachedLookup(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{})
	ctx := benchCtx(b)
	if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	if eng.NetworkRuns() != 1 {
		b.Fatalf("cached benchmark hit the network %d times", eng.NetworkRuns())
	}
}

// BenchmarkEngineCachedLookupParallel hammers one warm key from every
// core at once (b.RunParallel) — the million-clients-one-domain shape.
// On the sharded store the fresh-hit path is a shard read-lock plus
// atomics, so ns/op should fall as GOMAXPROCS grows instead of
// plateauing behind a single cache mutex; compare against the serial
// BenchmarkEngineCachedLookup.
func BenchmarkEngineCachedLookupParallel(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{})
	ctx := benchCtx(b)
	if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		b.Fatal(err) // warm the cache
	}
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
				b.Error(err)
				return
			}
		}
	})
	if eng.NetworkRuns() != 1 {
		b.Fatalf("parallel cached benchmark hit the network %d times", eng.NetworkRuns())
	}
}

// BenchmarkEngineTrustScoredLookup is BenchmarkEngineCachedLookup with
// trust scoring and enforcement enabled — the benchgate pairing that
// proves trust stays off the cached-hit fast path: scoring runs only when
// a pool is generated, so the cached ns/op must match the trust-free
// engine within noise.
func BenchmarkEngineTrustScoredLookup(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{TrustWindow: 8, TrustMinScore: 0.5})
	ctx := benchCtx(b)
	if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
		b.Fatal(err) // warm the cache (and the one trust observation)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
	if eng.NetworkRuns() != 1 {
		b.Fatalf("trust-scored cached benchmark hit the network %d times", eng.NetworkRuns())
	}
}

// BenchmarkEngineUncachedLookup is the same lookup with caching disabled:
// every iteration pays the full 3-resolver DoH fan-out (the seed's
// behaviour for every query).
func BenchmarkEngineUncachedLookup(b *testing.B) {
	tb := benchTestbed(b, testbed.Config{})
	eng := benchEngine(b, tb, core.EngineConfig{CacheSize: -1})
	ctx := benchCtx(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := eng.Lookup(ctx, tb.Domain(), dnswire.TypeA); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkFrontendThroughput measures end-to-end frontend queries over
// all four serving transports (plain UDP/TCP, RFC 7858 DoT, RFC 8484
// DoH) with the engine underneath, parallel clients hammering one
// cached domain — the million-client serving shape. The UDP pair runs a
// raw persistent-socket client (pre-encoded query, ID patched per
// iteration, byte-level response checks) so the measurement — and the
// allocs/op column — is the server's wire-cache fast path, not client
// message building: "udp" forces the portable one-datagram-per-syscall
// path, "udp_batch" the platform recvmmsg/sendmmsg path, and
// "udp_sockets" SO_REUSEPORT multi-socket serving under pipelined flood
// load. The encrypted pair adds what the authenticated channel costs
// (DoT resumes TLS sessions across exchanges; DoH reuses pooled HTTP/2
// connections), and the "*_fast" trio measures the stream fast path the
// same way the raw UDP clients do: pre-framed queries, byte-level
// validation, nothing allocated per exchange on the client.
func BenchmarkFrontendThroughput(b *testing.B) {
	// serve builds the warm serving stack shared by every transport:
	// testbed, engine, frontend on all four listeners. udpSockets 1 is
	// the classic single-reader shape every historical entry was
	// measured with; the udp_sockets entry raises it explicitly.
	serve := func(b *testing.B, udpBatch, udpSockets int) (*testbed.Testbed, *core.Frontend, *testpki.CA) {
		tb := benchTestbed(b, testbed.Config{})
		eng := benchEngine(b, tb, core.EngineConfig{})
		ca, err := testpki.NewCA()
		if err != nil {
			b.Fatal(err)
		}
		tlsCfg, err := ca.ServerTLS("127.0.0.1")
		if err != nil {
			b.Fatal(err)
		}
		fe, err := core.NewFrontendWithConfig("127.0.0.1:0", eng, core.FrontendConfig{
			Timeout:    5 * time.Second,
			DoTAddr:    "127.0.0.1:0",
			DoHAddr:    "127.0.0.1:0",
			TLSConfig:  tlsCfg,
			UDPBatch:   udpBatch,
			UDPSockets: udpSockets,
		})
		if err != nil {
			b.Fatal(err)
		}
		b.Cleanup(func() { _ = fe.Close() })
		return tb, fe, ca
	}
	run := func(b *testing.B, mkExchange func(ca *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error)) {
		tb, fe, ca := serve(b, 0, 1)
		exchange := mkExchange(ca, fe)
		ctx := benchCtx(b)
		// Warm the cache so the measurement isolates serving throughput.
		warm, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := exchange(ctx, warm); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// b.Error, not b.Fatal: FailNow must not run outside the
			// benchmark goroutine.
			for pb.Next() {
				q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
				if err != nil {
					b.Error(err)
					return
				}
				resp, err := exchange(ctx, q)
				if err != nil {
					b.Error(err)
					return
				}
				if len(resp.AnswerAddrs()) == 0 && !resp.Header.Truncated {
					b.Error("empty answer")
					return
				}
			}
		})
	}
	// runUDP is the raw-socket variant: one connected UDP socket per
	// client goroutine, a query encoded once with only its transaction ID
	// rewritten per iteration, and responses validated at the byte level
	// (ID echo, QR bit, non-empty answer unless truncated). The client
	// side allocates nothing per exchange, so ns/op and allocs/op track
	// the server's serve path.
	// udpExchange is the byte-level ping-pong validator shared by the raw
	// UDP clients: ID echo, QR bit, non-empty answer unless truncated.
	udpExchange := func(conn net.Conn, query, buf []byte) error {
		if _, err := conn.Write(query); err != nil {
			return err
		}
		n, err := conn.Read(buf)
		if err != nil {
			return err
		}
		if n < 12 || buf[0] != query[0] || buf[1] != query[1] || buf[2]&0x80 == 0 {
			return errMalformedAnswer
		}
		if buf[6] == 0 && buf[7] == 0 && buf[2]&0x02 == 0 {
			return errEmptyAnswer
		}
		return nil
	}
	runUDP := func(b *testing.B, udpBatch int) {
		tb, fe, _ := serve(b, udpBatch, 1)
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := q.Encode()
		if err != nil {
			b.Fatal(err)
		}
		exchange := udpExchange
		// Warm the cache so the measurement isolates serving throughput.
		warmConn, err := net.Dial("udp", fe.Addr())
		if err != nil {
			b.Fatal(err)
		}
		_ = warmConn.SetDeadline(time.Now().Add(time.Minute))
		if err := exchange(warmConn, wire, make([]byte, 4096)); err != nil {
			b.Fatal(err)
		}
		_ = warmConn.Close()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			conn, err := net.Dial("udp", fe.Addr())
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
			query := append([]byte(nil), wire...)
			buf := make([]byte, 4096)
			var id uint16
			for pb.Next() {
				id++
				query[0], query[1] = byte(id>>8), byte(id)
				if err := exchange(conn, query, buf); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	// runUDPFlood is the open-pipeline variant for the SO_REUSEPORT
	// measurement: every client goroutine floods bursts of `depth`
	// queries from its own socket (batched with the same
	// recvmmsg/sendmmsg machinery the server uses), so the kernel steers
	// distinct 4-tuples to distinct sockets and the server's batches
	// actually fill — the ping-pong clients above never put more than one
	// datagram in a batch, so compare udp_sockets against udp_batch as
	// "flood load" vs "lock-step load", not socket-count alone. The
	// kernel steers each 4-tuple to exactly one socket and the reader
	// serves cached hits inline in arrival order, so responses come back
	// in send order and the ID echo check stays exact.
	runUDPFlood := func(b *testing.B, udpSockets, depth int) {
		tb, fe, _ := serve(b, 0, udpSockets)
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := q.Encode()
		if err != nil {
			b.Fatal(err)
		}
		srvAddr, err := net.ResolveUDPAddr("udp", fe.Addr())
		if err != nil {
			b.Fatal(err)
		}
		// Warm the cache so the measurement isolates serving throughput.
		warmConn, err := net.Dial("udp", fe.Addr())
		if err != nil {
			b.Fatal(err)
		}
		_ = warmConn.SetDeadline(time.Now().Add(time.Minute))
		if err := udpExchange(warmConn, wire, make([]byte, 4096)); err != nil {
			b.Fatal(err)
		}
		_ = warmConn.Close()
		b.ReportAllocs()
		b.SetParallelism(2)
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			// A connected socket caches the route, shaving per-datagram
			// kernel cost off every sendmmsg (Linux permits an explicit
			// msg_name on a connected UDP socket when it matches the peer).
			conn, err := net.DialUDP("udp", nil, srvAddr)
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
			uc, err := udpbatch.New(conn, depth)
			if err != nil {
				b.Error(err)
				return
			}
			wdgs := make([]*udpbatch.Datagram, depth)
			rdgs := make([]*udpbatch.Datagram, depth)
			for i := range wdgs {
				wdgs[i] = &udpbatch.Datagram{
					Buf:  append([]byte(nil), wire...),
					N:    len(wire),
					Addr: srvAddr,
				}
				rdgs[i] = &udpbatch.Datagram{
					Buf:  make([]byte, 4096),
					Addr: &net.UDPAddr{IP: make(net.IP, 0, 16)},
				}
			}
			var sent, recvd uint16
			for {
				k := 0
				for k < depth && pb.Next() {
					sent++
					wdgs[k].Buf[0], wdgs[k].Buf[1] = byte(sent>>8), byte(sent)
					k++
				}
				if k == 0 {
					return
				}
				for written := 0; written < k; {
					n, err := uc.WriteBatch(wdgs[written:k])
					if err != nil {
						b.Error(err)
						return
					}
					written += n
				}
				for got := 0; got < k; {
					n, err := uc.ReadBatch(rdgs[:k-got])
					if err != nil {
						b.Error(err)
						return
					}
					for i := 0; i < n; i++ {
						recvd++
						resp := rdgs[i].Buf
						if rdgs[i].N < 12 || resp[0] != byte(recvd>>8) || resp[1] != byte(recvd) || resp[2]&0x80 == 0 {
							b.Error(errMalformedAnswer)
							return
						}
						if resp[6] == 0 && resp[7] == 0 && resp[2]&0x02 == 0 {
							b.Error(errEmptyAnswer)
							return
						}
					}
					got += n
				}
				if k < depth {
					return
				}
			}
		})
	}
	// runStream is the raw framed client for the stream fast path,
	// mirroring runUDP: one persistent connection per goroutine, the
	// query framed once (RFC 7766 length prefix) with only its
	// transaction ID rewritten per iteration, the response read into a
	// reused buffer and validated at the byte level. With the server
	// answering cached hits in a single pre-encoded write, both sides of
	// the measurement are allocation-free.
	runStream := func(b *testing.B, mkDial func(ca *testpki.CA, fe *core.Frontend) func() (net.Conn, error)) {
		tb, fe, ca := serve(b, 0, 1)
		dial := mkDial(ca, fe)
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := q.Encode()
		if err != nil {
			b.Fatal(err)
		}
		framed := make([]byte, 2+len(wire))
		framed[0], framed[1] = byte(len(wire)>>8), byte(len(wire))
		copy(framed[2:], wire)
		exchange := func(conn net.Conn, query, buf []byte) error {
			if _, err := conn.Write(query); err != nil {
				return err
			}
			if _, err := io.ReadFull(conn, buf[:2]); err != nil {
				return err
			}
			n := int(buf[0])<<8 | int(buf[1])
			if n < 12 || n > len(buf)-2 {
				return errMalformedAnswer
			}
			body := buf[2 : 2+n]
			if _, err := io.ReadFull(conn, body); err != nil {
				return err
			}
			if body[0] != query[2] || body[1] != query[3] || body[2]&0x80 == 0 {
				return errMalformedAnswer
			}
			// Streams never truncate, so the answer must be present.
			if body[6] == 0 && body[7] == 0 {
				return errEmptyAnswer
			}
			return nil
		}
		// Warm the cache so every measured exchange is a wire-cache hit.
		warmConn, err := dial()
		if err != nil {
			b.Fatal(err)
		}
		_ = warmConn.SetDeadline(time.Now().Add(time.Minute))
		if err := exchange(warmConn, framed, make([]byte, 4096)); err != nil {
			b.Fatal(err)
		}
		_ = warmConn.Close()
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			conn, err := dial()
			if err != nil {
				b.Error(err)
				return
			}
			defer conn.Close()
			_ = conn.SetDeadline(time.Now().Add(5 * time.Minute))
			query := append([]byte(nil), framed...)
			buf := make([]byte, 4096)
			var id uint16
			for pb.Next() {
				id++
				query[2], query[3] = byte(id>>8), byte(id)
				if err := exchange(conn, query, buf); err != nil {
					b.Error(err)
					return
				}
			}
		})
	}
	b.Run("udp", func(b *testing.B) { runUDP(b, 1) })
	b.Run("udp_batch", func(b *testing.B) { runUDP(b, 0) })
	b.Run("udp_sockets", func(b *testing.B) { runUDPFlood(b, 4, 32) })
	b.Run("tcp", func(b *testing.B) {
		run(b, func(_ *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
			tcp := &transport.TCP{}
			return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
				return tcp.Exchange(ctx, q, fe.Addr())
			}
		})
	})
	b.Run("tcp_fast", func(b *testing.B) {
		runStream(b, func(_ *testpki.CA, fe *core.Frontend) func() (net.Conn, error) {
			addr := fe.Addr()
			return func() (net.Conn, error) { return net.Dial("tcp", addr) }
		})
	})
	b.Run("dot", func(b *testing.B) {
		run(b, func(ca *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
			// A session cache lets every exchange after the first resume
			// the TLS session (a TLS 1.3 PSK handshake), amortising the
			// full certificate handshake the per-exchange dial would
			// otherwise pay — the stub-resolver shape with a warm client.
			tlsCfg := ca.ClientTLS()
			tlsCfg.ClientSessionCache = tls.NewLRUClientSessionCache(8)
			dot := &transport.DoT{TLSConfig: tlsCfg}
			return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
				return dot.Exchange(ctx, q, fe.DoTAddr())
			}
		})
	})
	b.Run("dot_fast", func(b *testing.B) {
		runStream(b, func(ca *testpki.CA, fe *core.Frontend) func() (net.Conn, error) {
			tlsCfg := ca.ClientTLS()
			tlsCfg.ClientSessionCache = tls.NewLRUClientSessionCache(8)
			addr := fe.DoTAddr()
			return func() (net.Conn, error) { return tls.Dial("tcp", addr, tlsCfg) }
		})
	})
	b.Run("doh", func(b *testing.B) {
		run(b, func(ca *testpki.CA, fe *core.Frontend) func(context.Context, *dnswire.Message) (*dnswire.Message, error) {
			client := doh.NewClient(doh.WithTLSConfig(ca.ClientTLS()))
			url := "https://" + fe.DoHAddr() + doh.DefaultPath
			return func(ctx context.Context, q *dnswire.Message) (*dnswire.Message, error) {
				return client.Exchange(ctx, q, url)
			}
		})
	})
	// doh_fast drives the DoH wire hook with a raw HTTP client: the query
	// bytes are encoded once and POSTed directly, the response body read
	// into a reused buffer and validated like the raw stream clients.
	// HTTP request construction still allocates client-side, so allocs/op
	// here bounds the whole exchange, not the server alone.
	b.Run("doh_fast", func(b *testing.B) {
		tb, fe, ca := serve(b, 0, 1)
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			b.Fatal(err)
		}
		wire, err := q.Encode()
		if err != nil {
			b.Fatal(err)
		}
		client := &http.Client{Transport: &http.Transport{
			TLSClientConfig:   ca.ClientTLS(),
			ForceAttemptHTTP2: true,
		}}
		url := "https://" + fe.DoHAddr() + doh.DefaultPath
		exchange := func(query, buf []byte) error {
			req, err := http.NewRequest(http.MethodPost, url, bytes.NewReader(query))
			if err != nil {
				return err
			}
			req.Header.Set("Content-Type", doh.MediaType)
			req.Header.Set("Accept", doh.MediaType)
			resp, err := client.Do(req)
			if err != nil {
				return err
			}
			n := 0
			for n < len(buf) {
				m, rerr := resp.Body.Read(buf[n:])
				n += m
				if rerr == io.EOF {
					break
				}
				if rerr != nil {
					_ = resp.Body.Close()
					return rerr
				}
			}
			if err := resp.Body.Close(); err != nil {
				return err
			}
			if resp.StatusCode != http.StatusOK {
				return errMalformedAnswer
			}
			if n < 12 || buf[0] != query[0] || buf[1] != query[1] || buf[2]&0x80 == 0 {
				return errMalformedAnswer
			}
			if buf[6] == 0 && buf[7] == 0 {
				return errEmptyAnswer
			}
			return nil
		}
		// Warm the cache so every measured exchange is a wire-cache hit.
		if err := exchange(wire, make([]byte, 4096)); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		b.RunParallel(func(pb *testing.PB) {
			query := append([]byte(nil), wire...)
			buf := make([]byte, 4096)
			var id uint16
			for pb.Next() {
				id++
				query[0], query[1] = byte(id>>8), byte(id)
				if err := exchange(query, buf); err != nil {
					b.Error(err)
					return
				}
			}
		})
	})
}

// Sentinel errors for the raw UDP benchmark client: constructed once so
// the per-iteration validation cannot allocate.
var (
	errMalformedAnswer = errors.New("malformed answer")
	errEmptyAnswer     = errors.New("empty answer")
)

// BenchmarkWirePatchID measures the complete per-query patch the wire
// cache's fast path applies to a pre-encoded response: transaction ID,
// RD/CD flag echo, and aged answer TTLs. This is everything a cached
// UDP hit pays beyond the memcpy, so it must stay allocation-free and
// in the low tens of nanoseconds.
func BenchmarkWirePatchID(b *testing.B) {
	msg := &dnswire.Message{Header: dnswire.Header{Response: true, RecursionAvailable: true}}
	msg.Questions = []dnswire.Question{{Name: "pool.ntp.org.", Type: dnswire.TypeA, Class: dnswire.ClassINET}}
	for i := 0; i < 8; i++ {
		msg.Answers = append(msg.Answers, dnswire.AddressRecord(
			"pool.ntp.org.", netip.AddrFrom4([4]byte{192, 0, 2, byte(i)}), 150))
	}
	wire, err := msg.Encode()
	if err != nil {
		b.Fatal(err)
	}
	offsets, err := dnswire.AnswerTTLOffsets(wire)
	if err != nil {
		b.Fatal(err)
	}
	query := []byte{0, 0, 0x01, 0x10, 0, 1, 0, 0, 0, 0, 0, 0} // RD and CD set
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dnswire.PatchID(wire, uint16(i))
		dnswire.EchoFlags(wire, query)
		dnswire.PatchAnswerTTLs(wire, offsets, uint32(i%150+1))
	}
}

func itoa(n int) string {
	if n < 10 {
		return string(rune('0' + n))
	}
	return string(rune('0'+n/10)) + string(rune('0'+n%10))
}
