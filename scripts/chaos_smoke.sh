#!/usr/bin/env bash
# Chaos smoke: boot the full Figure 1 stack (testbed authoritative
# servers + DoH resolvers) and a dohpoold whose chaos adversary inflates
# resolver 0's answers on every exchange, then assert that
#
#   1. the daemon serves consensus answers throughout,
#   2. trust enforcement quarantines the attacked resolver, and the
#      cached pools' attacker-entry count reaches 0,
#   3. the attacked daemon answers cleanly over its encrypted serving
#      transports too (RFC 8484 DoH and RFC 7858 DoT, via dohquery),
#   4. both processes exit 0 on SIGTERM.
#
# Requires: go, python3 (stdlib only), curl, jq.
set -euo pipefail

cd "$(dirname "$0")/.."
workdir=$(mktemp -d)
TB_PID=""
DP_PID=""
cleanup() {
  [ -n "$DP_PID" ] && kill -TERM "$DP_PID" 2>/dev/null || true
  [ -n "$TB_PID" ] && kill -TERM "$TB_PID" 2>/dev/null || true
  rm -rf "$workdir"
}
trap cleanup EXIT

DNS_PORT=${DNS_PORT:-15353}
ADMIN_PORT=${ADMIN_PORT:-18053}
DOH_PORT=${DOH_PORT:-18443}
DOT_PORT=${DOT_PORT:-18853}

go build -o "$workdir/bin/" ./cmd/testbed ./cmd/dohpoold ./cmd/dohquery

# Short-TTL pool records so the refresh-ahead pipeline turns generations
# over quickly while the attack runs.
"$workdir/bin/testbed" -ttl 5 \
  -ca-out "$workdir/ca.pem" -endpoints-out "$workdir/endpoints.txt" &
TB_PID=$!
for _ in $(seq 100); do
  [ -s "$workdir/endpoints.txt" ] && [ -s "$workdir/ca.pem" ] && break
  sleep 0.1
done
[ -s "$workdir/endpoints.txt" ] || { echo "FAIL: testbed endpoints never appeared" >&2; exit 1; }

resolver_flags=()
while read -r url; do resolver_flags+=(-resolver "$url"); done <"$workdir/endpoints.txt"

"$workdir/bin/dohpoold" \
  -listen "127.0.0.1:$DNS_PORT" -admin "127.0.0.1:$ADMIN_PORT" -ca "$workdir/ca.pem" \
  -doh-addr "127.0.0.1:$DOH_PORT" -dot-addr "127.0.0.1:$DOT_PORT" \
  -tls-self-signed -tls-ca-out "$workdir/serving-ca.pem" \
  -chaos-payload inflate -chaos-resolvers 0 -chaos-prob 1 \
  -trust-window 4 -trust-min-score 0.5 \
  -refresh-ahead 0.5 -refresh-min-hits 0 -stale-while-revalidate 30s \
  "${resolver_flags[@]}" &
DP_PID=$!
for _ in $(seq 100); do
  curl -sf "127.0.0.1:$ADMIN_PORT/healthz" >/dev/null 2>&1 && break
  sleep 0.1
done

# One plain-DNS query through the attacked daemon (python stdlib: no dig
# dependency). The first generation may legitimately carry the bounded
# minority share of attacker addresses — truncation's guarantee — so only
# rcode/answer-count are asserted here.
query() {
  python3 - "$DNS_PORT" <<'PY'
import socket, sys
q = bytes.fromhex('123401000001000000000000') \
    + b'\x04pool\x07ntppool\x04test\x00' + bytes.fromhex('00010001')
s = socket.socket(socket.AF_INET, socket.SOCK_DGRAM)
s.settimeout(5)
s.sendto(q, ('127.0.0.1', int(sys.argv[1])))
resp, _ = s.recvfrom(4096)
rcode = resp[3] & 0x0F
ancount = int.from_bytes(resp[6:8], 'big')
print(f'query: rcode={rcode} answers={ancount}')
sys.exit(0 if rcode == 0 and ancount > 0 else 1)
PY
}

query || { echo "FAIL: warm-up query through dohpoold failed" >&2; exit 1; }

# Keep light query load on the frontend while waiting for trust
# quarantine: refresh-ahead only keeps pools warm that clients actually
# read, so the smoke runs the whole stack — frontend, cache, refresher,
# background regeneration — attacked under load, until the chaos-targeted
# resolver is distrusted and every cached pool is clean of
# attacker-prefix entries.
clean=""
for _ in $(seq 60); do
  query >/dev/null || true
  poolz=$(curl -sf "127.0.0.1:$ADMIN_PORT/poolz")
  if echo "$poolz" | jq -e '
      (.pools | length) > 0
      and ([.pools[].attacker_entries] | add) == 0
      and ([.pools[].refreshes] | add) >= 1' >/dev/null; then
    clean=yes
    break
  fi
  sleep 0.5
done
if [ -z "$clean" ]; then
  echo "FAIL: cached pools never came clean under chaos:" >&2
  curl -sf "127.0.0.1:$ADMIN_PORT/poolz" | jq . >&2 || true
  curl -sf "127.0.0.1:$ADMIN_PORT/trustz" | jq . >&2 || true
  exit 1
fi

echo "--- /poolz (clean) ---"
curl -sf "127.0.0.1:$ADMIN_PORT/poolz" | jq .
echo "--- /trustz ---"
curl -sf "127.0.0.1:$ADMIN_PORT/trustz" | jq .
curl -sf "127.0.0.1:$ADMIN_PORT/trustz" \
  | jq -e '[.resolvers[] | select(.distrusted)] | length == 1' >/dev/null \
  || { echo "FAIL: expected exactly one distrusted resolver" >&2; exit 1; }
echo "--- adversarial metrics ---"
curl -sf "127.0.0.1:$ADMIN_PORT/metrics" \
  | grep -E 'dohpool_(resolver_trust|pool_attacker_entries|generations_filtered_total|chaos_forged_total)'

# Serving still works on the clean pool.
query || { echo "FAIL: post-quarantine query failed" >&2; exit 1; }

# The attacked daemon must answer cleanly over the encrypted serving
# transports too: one RFC 8484 DoH and one RFC 7858 DoT exchange via
# dohquery, trusting the daemon's self-signed serving CA. /healthz must
# list all four listeners.
echo "--- encrypted serving transports (doh + dot) ---"
"$workdir/bin/dohquery" -ca "$workdir/serving-ca.pem" \
  -doh "https://127.0.0.1:$DOH_PORT/dns-query" \
  -dot "127.0.0.1:$DOT_PORT" \
  pool.ntppool.test \
  || { echo "FAIL: encrypted (doh/dot) query through attacked dohpoold failed" >&2; exit 1; }
curl -sf "127.0.0.1:$ADMIN_PORT/healthz" \
  | jq -e '[.listeners[].proto] | sort == ["doh","dot","tcp","udp"]' >/dev/null \
  || { echo "FAIL: /healthz does not report all four listeners" >&2; exit 1; }

# Clean shutdown must exit 0 for both processes.
kill -TERM "$DP_PID"
wait "$DP_PID"
DP_PID=""
kill -TERM "$TB_PID"
wait "$TB_PID"
TB_PID=""
echo "chaos smoke ok: attacker-entry count 0 across served pools"
