#!/usr/bin/env bash
# SLO smoke: prove the serving fast path under offered load, twice.
#
#   1. Clean run: loadgen boots the self-hosted stack (testbed
#      resolvers + in-process dohpoold) and drives a fixed open-loop
#      UDP schedule against the prewarmed cache. `benchgate slo` gates
#      the cached-hit p999 (absolute ceiling + checked-in baseline with
#      slack) and the success rate (>= 99.9%).
#   2. Degraded run: the same schedule with network chaos on the
#      client -> resolver paths (drop + delay). Cached serving must not
#      care — success stays >= 99.9% under a looser latency bound.
#
# Artifacts BENCH_slo.json / BENCH_slo_chaos.json are left in the repo
# root for CI upload.
#
# Requires: go.
set -euo pipefail

cd "$(dirname "$0")/.."

QPS=${QPS:-2000}
DURATION=${DURATION:-5s}
DOMAINS=${DOMAINS:-16}

echo "=== clean run: ${QPS} qps UDP for ${DURATION} ==="
# -udp-sockets 0 sizes the SO_REUSEPORT socket count from NumCPU, so the
# clean run exercises multi-socket serving wherever the runner has >1
# core (single-socket elsewhere — the portable clamp).
go run ./cmd/loadgen -selfhost -transports udp \
  -selfhost-domains "$DOMAINS" \
  -udp-sockets 0 \
  -qps "$QPS" -duration "$DURATION" \
  -json BENCH_slo.json

echo "=== gate: cached-hit p999 + success rate ==="
go run ./cmd/benchgate slo \
  -current BENCH_slo.json \
  -baseline BENCH_slo_baseline.json \
  -proto udp \
  -min-success 0.999 \
  -max-p999-ms 100 \
  -threshold 2.0 -slack-ms 40

echo "=== degraded run: +10% drop, +3ms delay on resolver paths ==="
go run ./cmd/loadgen -selfhost -transports udp \
  -selfhost-domains "$DOMAINS" \
  -net-chaos-drop 0.1 -net-chaos-delay 3ms \
  -qps "$QPS" -duration "$DURATION" \
  -json BENCH_slo_chaos.json

echo "=== gate: degraded but bounded ==="
go run ./cmd/benchgate slo \
  -current BENCH_slo_chaos.json \
  -proto udp \
  -min-success 0.999 \
  -max-p999-ms 200

echo "slo smoke ok: cached-hit SLO held on the clean and net-chaos runs"
