#!/usr/bin/env bash
# One-shot static-analysis sweep — the same gates CI's lint job runs:
#
#   1. gofmt (diff-clean tree),
#   2. go vet with the stock analyzers,
#   3. staticcheck, when installed (CI always installs it; locally the
#      sweep degrades gracefully rather than requiring a download),
#   4. dohlint, the project analyzer suite (noalloc, metricsname,
#      configalias, buildtag, lockcheck, atomiccheck, golifecycle)
#      driven through go vet's vettool protocol,
#   5. the dohlint escape gate: recompile every package containing
#      //dohlint:noalloc functions with -m and fail on any heap escape
#      inside an annotated fast path.
#
# Requires: go. Exits non-zero on the first failing gate.
set -euo pipefail

cd "$(dirname "$0")/.."

echo "==> gofmt"
out=$(gofmt -l .)
if [ -n "$out" ]; then
  echo "gofmt needed on:" >&2
  echo "$out" >&2
  exit 1
fi

echo "==> go vet"
go vet ./...

if command -v staticcheck >/dev/null 2>&1; then
  echo "==> staticcheck"
  staticcheck ./...
else
  echo "==> staticcheck (skipped: not installed)"
fi

workdir=$(mktemp -d)
trap 'rm -rf "$workdir"' EXIT

echo "==> dohlint (project analyzers)"
go build -o "$workdir/dohlint" ./cmd/dohlint
go vet -vettool="$workdir/dohlint" ./...

echo "==> dohlint escape gate"
"$workdir/dohlint" escape ./...

echo "all lint gates passed"
