package dohpool

import (
	"bytes"
	"context"
	"crypto/tls"
	"errors"
	"io"
	"net"
	"net/http"
	"net/netip"
	"slices"
	"sort"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/dnswire"
	"dohpool/internal/doh"
	"dohpool/internal/testbed"
	"dohpool/internal/testpki"
	"dohpool/internal/transport"
)

// startTB boots a Figure 1 testbed and returns a public Client over it.
func startTB(t *testing.T, cfg testbed.Config, clientCfg Config) (*testbed.Testbed, *Client) {
	t.Helper()
	tb, err := testbed.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })

	clientCfg.TLSConfig = tb.CA.ClientTLS()
	if clientCfg.Resolvers == nil {
		for _, ep := range tb.Endpoints {
			clientCfg.Resolvers = append(clientCfg.Resolvers, Resolver{Name: ep.Name, URL: ep.URL})
		}
	}
	client, err := New(clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb, client
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoResolvers) {
		t.Errorf("empty config: %v", err)
	}
	if _, err := New(Config{Resolvers: []Resolver{{Name: "x"}}}); err == nil {
		t.Error("resolver without URL accepted")
	}
}

func TestLookupPoolEndToEnd(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	if client.ResolverCount() != 3 {
		t.Fatalf("N = %d", client.ResolverCount())
	}
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if pool.TruncateLength != 4 || len(pool.Addrs) != 12 {
		t.Fatalf("K=%d |pool|=%d, want 4/12", pool.TruncateLength, len(pool.Addrs))
	}
	if len(pool.PerResolver) != 3 {
		t.Fatalf("PerResolver = %d", len(pool.PerResolver))
	}
	for _, pr := range pool.PerResolver {
		if pr.Err != nil {
			t.Errorf("resolver %s: %v", pr.Resolver.Name, pr.Err)
		}
		if pr.RTT <= 0 {
			t.Errorf("resolver %s: RTT %v", pr.Resolver.Name, pr.RTT)
		}
	}
}

func TestLookupPoolWithMajority(t *testing.T) {
	tb, client := startTB(t,
		testbed.Config{
			Adversary: testbed.AdversaryResolver,
			Plan:      attack.FixedPlan(3, 0),
		},
		Config{WithMajority: true})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range pool.Majority {
		if attack.IsAttackerAddr(a) {
			t.Fatalf("attacker address %v passed majority filter", a)
		}
	}
	if len(pool.Majority) == 0 {
		t.Fatal("majority filter removed everything")
	}
}

func TestPoolIsACopy(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned pool must not corrupt later lookups.
	for i := range pool.Addrs {
		pool.Addrs[i] = attack.AttackerAddr(0)
	}
	pool2, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range pool2.Addrs {
		if attack.IsAttackerAddr(a) {
			t.Fatal("pools share storage")
		}
	}
}

func TestServeFrontend(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	fe, err := client.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	// A legacy stub resolver (plain UDP DNS) queries the frontend.
	query, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&transport.UDP{}).Exchange(testCtx(t), query, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 12 {
		t.Fatalf("frontend answered %d addrs, want the 12-entry pool", got)
	}
	if fe.Served() != 1 {
		t.Errorf("Served = %d", fe.Served())
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := net.ResolveUDPAddr("udp", fe.Addr()); err != nil {
		t.Fatal(err)
	}
}

func TestQuorumSurfacedThroughFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	// Kill one DoH server, strict quorum must fail with ErrQuorum.
	if err := tb.DoH[2].Close(); err != nil {
		t.Fatal(err)
	}
	_, err := client.LookupPool(testCtx(t), tb.Domain())
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

func TestEmptyAnswerSurfacedThroughFacade(t *testing.T) {
	tb, client := startTB(t,
		testbed.Config{
			Adversary: testbed.AdversaryResolver,
			Plan:      attack.FixedPlan(3, 1),
			Payload:   attack.PayloadEmpty,
		}, Config{})
	_, err := client.LookupPool(testCtx(t), tb.Domain())
	if !errors.Is(err, ErrEmptyAnswer) {
		t.Fatalf("err = %v, want ErrEmptyAnswer", err)
	}
}

func TestDualStackFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{DualStack: DualStackIndividual})
	// The testbed zone has no AAAA records; dual-stack must fall back to
	// the v4 pool.
	pool, err := client.LookupPoolDualStack(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 12 {
		t.Fatalf("dual-stack pool = %d", len(pool.Addrs))
	}
	// Direct IPv6 lookup fails (empty answers → ErrEmptyAnswer).
	if _, err := client.LookupPoolIPv6(testCtx(t), tb.Domain()); !errors.Is(err, ErrEmptyAnswer) {
		t.Fatalf("v6 lookup: %v", err)
	}
}

func TestGETMethodWorks(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{UseGET: true})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 12 {
		t.Fatalf("pool = %d", len(pool.Addrs))
	}
}

// countingDoHTransport answers RFC 8484 POST exchanges in-process,
// counting every exchange that would have hit the network.
type countingDoHTransport struct {
	exchanges atomic.Int64
	ttl       uint32
	addrs     []netip.Addr
}

func (c *countingDoHTransport) RoundTrip(req *http.Request) (*http.Response, error) {
	c.exchanges.Add(1)
	body, err := io.ReadAll(req.Body)
	if err != nil {
		return nil, err
	}
	query, err := dnswire.Decode(body)
	if err != nil {
		return nil, err
	}
	resp := dnswire.NewResponse(query)
	q := query.Questions[0]
	for _, a := range c.addrs {
		if (q.Type == dnswire.TypeA) == a.Is4() {
			resp.Answers = append(resp.Answers, dnswire.AddressRecord(q.Name, a, c.ttl))
		}
	}
	wire, err := resp.Encode()
	if err != nil {
		return nil, err
	}
	return &http.Response{
		StatusCode: http.StatusOK,
		Header:     http.Header{"Content-Type": []string{"application/dns-message"}},
		Body:       io.NopCloser(bytes.NewReader(wire)),
	}, nil
}

// TestLookupPoolCachedWithinTTL is the PR's acceptance criterion at the
// public API: a repeated LookupPool for the same domain within TTL
// performs zero network exchanges.
func TestLookupPoolCachedWithinTTL(t *testing.T) {
	rt := &countingDoHTransport{ttl: 300, addrs: []netip.Addr{
		netip.MustParseAddr("192.0.2.1"),
		netip.MustParseAddr("192.0.2.2"),
	}}
	client, err := New(Config{
		Resolvers: []Resolver{
			{Name: "r0", URL: "https://r0.test/dns-query"},
			{Name: "r1", URL: "https://r1.test/dns-query"},
			{Name: "r2", URL: "https://r2.test/dns-query"},
		},
		HTTPClient: &http.Client{Transport: rt},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := testCtx(t)

	pool, err := client.LookupPool(ctx, "pool.ntp.org.")
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 6 {
		t.Fatalf("pool = %d addrs", len(pool.Addrs))
	}
	after := rt.exchanges.Load()
	if after != 3 {
		t.Fatalf("first lookup = %d exchanges, want 3", after)
	}

	for i := 0; i < 10; i++ {
		if _, err := client.LookupPool(ctx, "pool.ntp.org."); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.exchanges.Load(); got != after {
		t.Fatalf("repeat lookups within TTL performed %d network exchanges, want 0", got-after)
	}

	if st := client.CacheStats(); st.Hits != 10 || st.HitRate() < 0.9 {
		t.Errorf("cache stats = %+v", st)
	}
	health := client.ResolverHealth()
	if len(health) != 3 {
		t.Fatalf("health entries = %d", len(health))
	}
	for _, h := range health {
		if h.Successes != 1 || h.Failures != 0 || h.CircuitOpen {
			t.Errorf("resolver %s health = %+v", h.Resolver.Name, h)
		}
		if h.EWMARTT <= 0 {
			t.Errorf("resolver %s has no EWMA RTT", h.Resolver.Name)
		}
	}
}

// TestCacheDisabledConfig verifies CacheSize < 0 restores per-call
// fan-out at the public API.
func TestCacheDisabledConfig(t *testing.T) {
	rt := &countingDoHTransport{ttl: 300, addrs: []netip.Addr{netip.MustParseAddr("192.0.2.1")}}
	client, err := New(Config{
		Resolvers:  []Resolver{{Name: "r0", URL: "https://r0.test/dns-query"}},
		CacheSize:  -1,
		HTTPClient: &http.Client{Transport: rt},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = client.Close() })
	ctx := testCtx(t)
	for i := 0; i < 3; i++ {
		if _, err := client.LookupPool(ctx, "pool.test."); err != nil {
			t.Fatal(err)
		}
	}
	if got := rt.exchanges.Load(); got != 3 {
		t.Fatalf("uncached exchanges = %d, want 3", got)
	}
}

func TestBuildInfoGaugeRegistered(t *testing.T) {
	_, client := startTB(t, testbed.Config{}, Config{})
	defer client.Close()
	var b bytes.Buffer
	if err := client.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, MetricBuildInfo+`{version=`) {
		t.Errorf("metrics missing %s gauge:\n%s", MetricBuildInfo, out)
	}
	version, revision := BuildInfo()
	if version == "" || revision == "" {
		t.Errorf("BuildInfo = %q, %q; want non-empty", version, revision)
	}
}

// TestRefreshAheadThroughFacade checks the always-warm knobs wire
// through the public API: a client with refresh-ahead on still answers
// lookups (the timing behaviour itself is covered in internal/core),
// and an out-of-range fraction is rejected at construction.
func TestRefreshAheadThroughFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{
		RefreshAhead:   0.8,
		RefreshMinHits: 1,
		CacheShards:    4,
	})
	defer client.Close()
	ctx := testCtx(t)
	pool, err := client.LookupPool(ctx, tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) == 0 {
		t.Fatal("empty pool")
	}
	if _, err := New(Config{
		Resolvers:    []Resolver{{Name: "r", URL: "https://r.test/dns-query"}},
		RefreshAhead: 1.5,
	}); err == nil {
		t.Error("RefreshAhead > 1 accepted")
	}
}

func TestRecommendResolverCount(t *testing.T) {
	n, err := RecommendResolverCount(0.1, 0.5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("N = %d, want 9", n)
	}
	if _, err := RecommendResolverCount(0.6, 0.5, 0.01); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestPaddingThroughFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{UsePadding: true})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 12 {
		t.Fatalf("padded lookup pool = %d", len(pool.Addrs))
	}
}

// TestAdminServerEndToEnd is the observability acceptance criterion: a
// Client with AdminAddr set serves Prometheus metrics covering engine
// lookups, cache effectiveness, resolver health and frontend traffic,
// plus breaker-aware readiness and the cached-pool dump, all while real
// DNS queries flow through the frontend.
func TestAdminServerEndToEnd(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{AdminAddr: "127.0.0.1:0"})
	t.Cleanup(func() { _ = client.Close() })
	addr := client.AdminAddr()
	if addr == "" {
		t.Fatal("AdminAddr empty with admin server configured")
	}

	fe, err := client.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	// Traffic: one cache-filling query plus one wire-cache fast-path hit
	// over UDP, then one engine cache hit over TCP (the UDP repeat is
	// answered from the pre-encoded wire cache and never reaches the
	// engine).
	for i := 0; i < 2; i++ {
		query, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := (&transport.UDP{}).Exchange(testCtx(t), query, fe.Addr()); err != nil {
			t.Fatal(err)
		}
	}
	tcpQuery, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := (&transport.TCP{}).Exchange(testCtx(t), tcpQuery, fe.Addr()); err != nil {
		t.Fatal(err)
	}

	get := func(path string) (int, string) {
		t.Helper()
		resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + addr + path)
		if err != nil {
			t.Fatal(err)
		}
		defer resp.Body.Close()
		body, err := io.ReadAll(resp.Body)
		if err != nil {
			t.Fatal(err)
		}
		return resp.StatusCode, string(body)
	}

	code, body := get("/metrics")
	if code != http.StatusOK {
		t.Fatalf("GET /metrics = %d", code)
	}
	for _, want := range []string{
		`dohpool_engine_lookups_total{outcome="network"} 1`,
		// The repeat UDP query and the TCP query are both wire-cache
		// hits, so the engine's slow path only ever ran the generating
		// miss.
		`dohpool_engine_lookups_total{outcome="cache_hit"} 0`,
		"dohpool_cache_hits_total 0",
		"dohpool_cache_misses_total 1",
		"dohpool_wire_cache_hits_total 2",
		"dohpool_wire_cache_misses_total 1",
		"dohpool_wire_cache_entries 1",
		`dohpool_frontend_udp_socket_packets_total{socket="0"}`,
		`dohpool_frontend_write_errors_total{proto="udp"} 0`,
		`result="ok"} 1`, // per-resolver exchange counters
		"dohpool_resolver_rtt_seconds{",
		`dohpool_frontend_queries_total{proto="udp"} 2`,
		`dohpool_frontend_queries_total{proto="tcp"} 1`,
		`dohpool_frontend_responses_total{rcode="NOERROR"} 3`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	if t.Failed() {
		t.Logf("exposition:\n%s", body)
	}

	code, body = get("/healthz")
	if code != http.StatusOK {
		t.Fatalf("GET /healthz = %d (%s)", code, body)
	}
	if !strings.Contains(body, `"status": "ok"`) {
		t.Errorf("/healthz body = %s", body)
	}

	code, body = get("/poolz")
	if code != http.StatusOK {
		t.Fatalf("GET /poolz = %d", code)
	}
	if !strings.Contains(body, tb.Domain()) {
		t.Errorf("/poolz does not mention %q: %s", tb.Domain(), body)
	}

	// WritePrometheus serves the same exposition for embedders.
	var buf bytes.Buffer
	if err := client.WritePrometheus(&buf); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), "dohpool_engine_lookups_total") {
		t.Error("WritePrometheus missing engine metrics")
	}

	// Close stops the admin server; the port must refuse connections.
	if err := client.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := (&http.Client{Timeout: time.Second}).Get("http://" + addr + "/healthz"); err == nil {
		t.Error("admin server still answering after Close")
	}
}

// TestEncryptedServingEndToEnd is the tentpole acceptance test: a
// chaos-attacked engine (resolver 0 forging every exchange) serves the
// same consensus pool over all four transports — plain UDP, plain TCP,
// RFC 7858 DoT and RFC 8484 DoH — out of one warm cache. Every
// transport must return the identical pool, the encrypted listeners
// must pay no second generation for a domain already cached via UDP,
// and the admin endpoints must report the listener state.
func TestEncryptedServingEndToEnd(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{
		ChaosPayload:   "replace",
		ChaosResolvers: []int{0},
		ChaosProb:      1,
		DoHAddr:        "127.0.0.1:0",
		DoTAddr:        "127.0.0.1:0",
		TLSSelfSigned:  true,
		AdminAddr:      "127.0.0.1:0",
	})
	t.Cleanup(func() { _ = client.Close() })

	fe, err := client.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })
	if fe.DoHAddr() == "" || fe.DoTAddr() == "" {
		t.Fatalf("encrypted listeners missing: doh=%q dot=%q", fe.DoHAddr(), fe.DoTAddr())
	}

	// Clients trust the daemon's self-signed serving CA — a different
	// trust root than the testbed's resolver CA, exactly like a real
	// deployment.
	caPEM := client.ServingCAPEM()
	if caPEM == nil {
		t.Fatal("ServingCAPEM nil in self-signed mode")
	}
	roots, err := testpki.PoolFromPEM(caPEM)
	if err != nil {
		t.Fatal(err)
	}
	serveTLS := &tls.Config{RootCAs: roots, MinVersion: tls.VersionTLS12}

	ctx := testCtx(t)
	answers := func(resp *dnswire.Message, err error) []string {
		t.Helper()
		if err != nil {
			t.Fatal(err)
		}
		if resp.Header.RCode != dnswire.RCodeSuccess {
			t.Fatalf("rcode = %v", resp.Header.RCode)
		}
		var out []string
		for _, a := range resp.AnswerAddrs() {
			out = append(out, a.String())
		}
		sort.Strings(out)
		if len(out) == 0 {
			t.Fatal("empty answer")
		}
		return out
	}
	newQuery := func() *dnswire.Message {
		t.Helper()
		q, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
		if err != nil {
			t.Fatal(err)
		}
		return q
	}

	// UDP warms the cache; every other transport must be a cache hit.
	got := map[string][]string{}
	got["udp"] = answers((&transport.UDP{}).Exchange(ctx, newQuery(), fe.Addr()))
	got["tcp"] = answers((&transport.TCP{}).Exchange(ctx, newQuery(), fe.Addr()))
	got["dot"] = answers((&transport.DoT{TLSConfig: serveTLS}).Exchange(ctx, newQuery(), fe.DoTAddr()))
	dohClient := doh.NewClient(doh.WithTLSConfig(serveTLS))
	got["doh"] = answers(dohClient.Query(ctx, "https://"+fe.DoHAddr()+doh.DefaultPath, tb.Domain(), dnswire.TypeA))

	for proto, addrs := range got {
		if !slices.Equal(addrs, got["udp"]) {
			t.Errorf("%s answers %v differ from udp answers %v", proto, addrs, got["udp"])
		}
	}

	// One generation total: the three encrypted/stream exchanges were
	// answered from the wire cache warmed by the UDP query, so the pool
	// cache records exactly the one generating miss — a second
	// generation would surface as another miss, and a slow-path stream
	// serve would surface as a pool-cache hit.
	cs := client.CacheStats()
	if cs.Misses != 1 || cs.Hits != 0 {
		t.Errorf("cache stats = %+v, want 1 miss (udp generation) and 0 hits (tcp/dot/doh served from the wire cache)", cs)
	}

	// The admin surface reports the four listeners on /healthz and
	// /poolz.
	for _, path := range []string{"/healthz", "/poolz"} {
		resp, err := (&http.Client{Timeout: 5 * time.Second}).Get("http://" + client.AdminAddr() + path)
		if err != nil {
			t.Fatal(err)
		}
		body, err := io.ReadAll(resp.Body)
		resp.Body.Close()
		if err != nil {
			t.Fatal(err)
		}
		for proto, addr := range map[string]string{
			"udp": fe.Addr(), "tcp": fe.Addr(), "dot": fe.DoTAddr(), "doh": fe.DoHAddr(),
		} {
			if !strings.Contains(string(body), `"proto": "`+proto+`"`) {
				t.Errorf("%s missing %s listener: %s", path, proto, body)
			}
			if !strings.Contains(string(body), addr) {
				t.Errorf("%s missing address %s: %s", path, addr, body)
			}
		}
	}
}

func TestAdminListenFailureIsMatchable(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	_, err = New(Config{
		Resolvers: []Resolver{{Name: "r", URL: "https://r.test/dns-query"}},
		AdminAddr: ln.Addr().String(),
	})
	if !errors.Is(err, ErrAdminListen) {
		t.Fatalf("err = %v, want ErrAdminListen", err)
	}
}

func TestNetChaosThroughFacade(t *testing.T) {
	// Delay-only network chaos: every resolver exchange pays the
	// injected latency but consensus still succeeds, and the netchaos
	// counters surface on /metrics-style exposition.
	tb, client := startTB(t, testbed.Config{}, Config{
		Chaos: ChaosConfig{Net: NetChaosConfig{Delay: 10 * time.Millisecond}},
	})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) == 0 {
		t.Fatal("empty pool under delay-only net chaos")
	}
	var b strings.Builder
	if err := client.WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	out := b.String()
	if !strings.Contains(out, MetricNetChaosDelayed) {
		t.Fatalf("exposition missing %s:\n%s", MetricNetChaosDelayed, out)
	}
	for _, pr := range pool.PerResolver {
		if pr.RTT < 10*time.Millisecond {
			t.Errorf("resolver %s: RTT %v, must include the injected 10ms", pr.Resolver.Name, pr.RTT)
		}
	}
}

func TestNetChaosDropMinorityStillConverges(t *testing.T) {
	// Hard-drop one resolver of three: its exchanges time out, but with
	// MinResolvers=2 the remaining majority still generates a pool.
	tb, client := startTB(t, testbed.Config{}, Config{
		MinResolvers: 2,
		QueryTimeout: 500 * time.Millisecond,
		Chaos: ChaosConfig{
			Net: NetChaosConfig{DropProb: 1, Resolvers: []int{0}},
		},
	})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) == 0 {
		t.Fatal("empty pool")
	}
	var sawDrop bool
	for _, pr := range pool.PerResolver {
		if pr.Err != nil {
			sawDrop = true
		}
	}
	if !sawDrop {
		t.Fatal("no resolver reported the injected drop")
	}
}

func TestNetChaosBadResolverIndex(t *testing.T) {
	_, err := New(Config{
		Resolvers: []Resolver{{Name: "a", URL: "https://a/dns-query"}},
		Chaos:     ChaosConfig{Net: NetChaosConfig{DropProb: 1, Resolvers: []int{5}}},
	})
	if err == nil {
		t.Fatal("out-of-range net-chaos resolver index accepted")
	}
}
