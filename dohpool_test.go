package dohpool

import (
	"context"
	"errors"
	"net"
	"testing"
	"time"

	"dohpool/internal/attack"
	"dohpool/internal/dnswire"
	"dohpool/internal/testbed"
	"dohpool/internal/transport"
)

// startTB boots a Figure 1 testbed and returns a public Client over it.
func startTB(t *testing.T, cfg testbed.Config, clientCfg Config) (*testbed.Testbed, *Client) {
	t.Helper()
	tb, err := testbed.Start(cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = tb.Close() })

	clientCfg.TLSConfig = tb.CA.ClientTLS()
	if clientCfg.Resolvers == nil {
		for _, ep := range tb.Endpoints {
			clientCfg.Resolvers = append(clientCfg.Resolvers, Resolver{Name: ep.Name, URL: ep.URL})
		}
	}
	client, err := New(clientCfg)
	if err != nil {
		t.Fatal(err)
	}
	return tb, client
}

func testCtx(t *testing.T) context.Context {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	t.Cleanup(cancel)
	return ctx
}

func TestNewValidation(t *testing.T) {
	if _, err := New(Config{}); !errors.Is(err, ErrNoResolvers) {
		t.Errorf("empty config: %v", err)
	}
	if _, err := New(Config{Resolvers: []Resolver{{Name: "x"}}}); err == nil {
		t.Error("resolver without URL accepted")
	}
}

func TestLookupPoolEndToEnd(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	if client.ResolverCount() != 3 {
		t.Fatalf("N = %d", client.ResolverCount())
	}
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if pool.TruncateLength != 4 || len(pool.Addrs) != 12 {
		t.Fatalf("K=%d |pool|=%d, want 4/12", pool.TruncateLength, len(pool.Addrs))
	}
	if len(pool.PerResolver) != 3 {
		t.Fatalf("PerResolver = %d", len(pool.PerResolver))
	}
	for _, pr := range pool.PerResolver {
		if pr.Err != nil {
			t.Errorf("resolver %s: %v", pr.Resolver.Name, pr.Err)
		}
		if pr.RTT <= 0 {
			t.Errorf("resolver %s: RTT %v", pr.Resolver.Name, pr.RTT)
		}
	}
}

func TestLookupPoolWithMajority(t *testing.T) {
	tb, client := startTB(t,
		testbed.Config{
			Adversary: testbed.AdversaryResolver,
			Plan:      attack.FixedPlan(3, 0),
		},
		Config{WithMajority: true})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range pool.Majority {
		if attack.IsAttackerAddr(a) {
			t.Fatalf("attacker address %v passed majority filter", a)
		}
	}
	if len(pool.Majority) == 0 {
		t.Fatal("majority filter removed everything")
	}
}

func TestPoolIsACopy(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	// Mutating the returned pool must not corrupt later lookups.
	for i := range pool.Addrs {
		pool.Addrs[i] = attack.AttackerAddr(0)
	}
	pool2, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	for _, a := range pool2.Addrs {
		if attack.IsAttackerAddr(a) {
			t.Fatal("pools share storage")
		}
	}
}

func TestServeFrontend(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	fe, err := client.Serve("127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { _ = fe.Close() })

	// A legacy stub resolver (plain UDP DNS) queries the frontend.
	query, err := dnswire.NewQuery(tb.Domain(), dnswire.TypeA)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := (&transport.UDP{}).Exchange(testCtx(t), query, fe.Addr())
	if err != nil {
		t.Fatal(err)
	}
	if got := len(resp.AnswerAddrs()); got != 12 {
		t.Fatalf("frontend answered %d addrs, want the 12-entry pool", got)
	}
	if fe.Served() != 1 {
		t.Errorf("Served = %d", fe.Served())
	}
	if err := fe.Close(); err != nil {
		t.Fatal(err)
	}
	if err := fe.Close(); err != nil {
		t.Fatalf("second Close: %v", err)
	}
	if _, err := net.ResolveUDPAddr("udp", fe.Addr()); err != nil {
		t.Fatal(err)
	}
}

func TestQuorumSurfacedThroughFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{})
	// Kill one DoH server, strict quorum must fail with ErrQuorum.
	if err := tb.DoH[2].Close(); err != nil {
		t.Fatal(err)
	}
	_, err := client.LookupPool(testCtx(t), tb.Domain())
	if !errors.Is(err, ErrQuorum) {
		t.Fatalf("err = %v, want ErrQuorum", err)
	}
}

func TestEmptyAnswerSurfacedThroughFacade(t *testing.T) {
	tb, client := startTB(t,
		testbed.Config{
			Adversary: testbed.AdversaryResolver,
			Plan:      attack.FixedPlan(3, 1),
			Payload:   attack.PayloadEmpty,
		}, Config{})
	_, err := client.LookupPool(testCtx(t), tb.Domain())
	if !errors.Is(err, ErrEmptyAnswer) {
		t.Fatalf("err = %v, want ErrEmptyAnswer", err)
	}
}

func TestDualStackFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{DualStack: DualStackIndividual})
	// The testbed zone has no AAAA records; dual-stack must fall back to
	// the v4 pool.
	pool, err := client.LookupPoolDualStack(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 12 {
		t.Fatalf("dual-stack pool = %d", len(pool.Addrs))
	}
	// Direct IPv6 lookup fails (empty answers → ErrEmptyAnswer).
	if _, err := client.LookupPoolIPv6(testCtx(t), tb.Domain()); !errors.Is(err, ErrEmptyAnswer) {
		t.Fatalf("v6 lookup: %v", err)
	}
}

func TestGETMethodWorks(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{UseGET: true})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 12 {
		t.Fatalf("pool = %d", len(pool.Addrs))
	}
}

func TestRecommendResolverCount(t *testing.T) {
	n, err := RecommendResolverCount(0.1, 0.5, 0.001)
	if err != nil {
		t.Fatal(err)
	}
	if n != 9 {
		t.Fatalf("N = %d, want 9", n)
	}
	if _, err := RecommendResolverCount(0.6, 0.5, 0.01); err == nil {
		t.Fatal("unreachable target accepted")
	}
}

func TestPaddingThroughFacade(t *testing.T) {
	tb, client := startTB(t, testbed.Config{}, Config{UsePadding: true})
	pool, err := client.LookupPool(testCtx(t), tb.Domain())
	if err != nil {
		t.Fatal(err)
	}
	if len(pool.Addrs) != 12 {
		t.Fatalf("padded lookup pool = %d", len(pool.Addrs))
	}
}
